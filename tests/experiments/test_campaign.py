"""The declarative campaign engine (repro/experiments/campaign.py)."""

import json

import pytest

from repro import telemetry
from repro.config import DEFAULT_CONFIG
from repro.errors import ConfigError
from repro.experiments import ablations
from repro.experiments import campaign as campaign_mod
from repro.experiments.campaign import (
    CAMPAIGNS, Campaign, Component, Knob, find_campaign, run_campaigns,
    run_id_for, snapshot_signals)
from repro.telemetry.instruments import RateStat


# ---------------------------------------------------------------------------
# toy scenario (module-level: campaign points must resolve by module)
# ---------------------------------------------------------------------------

def _toy_scenario(boost=True, seed=42, config=None, extra=0.0):
    """Deterministic arithmetic + a few instruments; no simulation."""
    value = (seed % 97) / 10.0 + (10.0 if boost else 5.0) + extra
    if config is not None:
        value += config.lynx.ring_entries / 1000.0
    reg = telemetry.registry()
    reg.counter("sim.kernel.events_processed").inc(int(value * 10))
    rate = RateStat(int(value * 100), 1000.0)
    reg.register("net.client.10.0.9.1.responses", rate)
    reg.histogram("net.client.10.0.9.1.latency").record(
        100.0 if boost else 150.0)
    return value


def _toy_campaign(exp_id, **overrides):
    spec = dict(
        scenario=_toy_scenario,
        slug="toy",
        components=[Component(
            "booster",
            [Knob("boost", values=(True, False), baseline=True,
                  kwarg="boost")])],
        row=lambda ctx, variant, value: {
            "boost": variant.assignment["boost"], "value": value},
        metric="value",
    )
    spec.update(overrides)
    return Campaign(exp_id, "toy", "test", **spec)


class TestKnob:
    def test_requires_exactly_one_target(self):
        with pytest.raises(ConfigError):
            Knob("k", values=(1, 2))
        with pytest.raises(ConfigError):
            Knob("k", values=(1, 2), kwarg="a", config="lynx.ring_entries")

    def test_config_path_validated_at_declaration(self):
        Knob("ok", values=(1, 2), config="lynx.ring_entries")
        Knob("ok2", values=("heap", "wheel"), config="sim_backend")
        with pytest.raises(ConfigError):
            Knob("bad", values=(1, 2), config="lynx.no_such_field")
        with pytest.raises(ConfigError):
            Knob("bad", values=(1, 2), config="nope.ring_entries")

    def test_needs_two_values(self):
        knob = Knob("k", values=(1,), kwarg="a")
        with pytest.raises(ConfigError):
            knob.values()

    def test_baseline_must_be_a_value(self):
        knob = Knob("k", values=(1, 2), baseline=3, kwarg="a")
        with pytest.raises(ConfigError):
            knob.baseline()

    def test_values_callable_of_fast(self):
        knob = Knob("k", values=lambda fast: (1, 2) if fast else (1, 2, 3),
                    kwarg="a")
        assert knob.values(fast=True) == (1, 2)
        assert knob.values(fast=False) == (1, 2, 3)
        assert knob.baseline(fast=False) == 1


class TestGrid:
    def test_single_knob_enumerates_values_in_order(self):
        camp = _toy_campaign("TOY-GRID1")
        variants = camp.variants(fast=True)
        assert [v.token for v in variants] == [True, False]
        assert variants[0].is_baseline and not variants[1].is_baseline
        assert variants[1].changed == ("boost",)

    def test_multi_knob_baseline_first_then_one_off(self):
        camp = Campaign(
            "TOY-GRID2", "toy", "test", scenario=_toy_scenario,
            components=[
                Component("a", [Knob("boost", values=(True, False),
                                     kwarg="boost")]),
                Component("b", [Knob("extra", values=(0.0, 1.0, 2.0),
                                     kwarg="extra")]),
            ])
        variants = camp.variants(fast=True)
        assert [v.token for v in variants] == \
            ["baseline", "boost=False", "extra=1.0", "extra=2.0"]
        assert variants[0].is_baseline
        assert variants[1].changed == ("boost",)

    def test_pairwise_opt_in(self):
        camp = Campaign(
            "TOY-GRID3", "toy", "test", scenario=_toy_scenario,
            components=[
                Component("a", [Knob("boost", values=(True, False),
                                     kwarg="boost")]),
                Component("b", [Knob("extra", values=(0.0, 1.0),
                                     kwarg="extra")]),
            ])
        plain = camp.variants(fast=True)
        paired = camp.variants(fast=True, pairwise=True)
        assert len(paired) == len(plain) + 1
        inter = paired[-1]
        assert inter.token == "boost=False+extra=1.0"
        assert inter.changed == ("boost", "extra")

    def test_duplicate_knob_names_rejected(self):
        with pytest.raises(ConfigError):
            Campaign(
                "TOY-DUP", "toy", "test", scenario=_toy_scenario,
                components=[
                    Component("a", [Knob("k", values=(1, 2), kwarg="a")]),
                    Component("b", [Knob("k", values=(3, 4), kwarg="b")]),
                ])


class TestRunIds:
    def test_stable_and_short(self):
        a = run_id_for("ABL-X", {"k": 1, "j": "on"}, 42)
        b = run_id_for("ABL-X", {"j": "on", "k": 1}, 42)
        assert a == b  # canonicalized by knob name
        assert len(a) == 12 and int(a, 16) >= 0

    def test_varies_with_assignment_and_seed(self):
        base = run_id_for("ABL-X", {"k": 1}, 42)
        assert run_id_for("ABL-X", {"k": 2}, 42) != base
        assert run_id_for("ABL-X", {"k": 1}, 43) != base
        assert run_id_for("ABL-Y", {"k": 1}, 42) != base

    def test_run_stamps_every_variant(self):
        camp = _toy_campaign("TOY-IDS")
        with telemetry.scope():
            outcome = camp.run(fast=True, seed=7)
        ids = [v.run_id for v in outcome.variants]
        assert len(set(ids)) == len(ids)
        assert all(len(i) == 12 for i in ids)


class TestConfigKnobs:
    def test_config_applied_to_scenario(self):
        camp = Campaign(
            "TOY-CFG", "toy", "test", scenario=_toy_scenario,
            components=[Component(
                "mqueue",
                [Knob("mqueue.ring_entries", values=(64, 256), baseline=64,
                      config="lynx.ring_entries")])],
            metric=None)
        variants = camp.variants(fast=True)
        kwargs = camp.scenario_kwargs(True, variants[1])
        assert kwargs["config"].lynx.ring_entries == 256
        # everything else stays at the defaults
        assert kwargs["config"].lynx.coalesce_metadata \
            == DEFAULT_CONFIG.lynx.coalesce_metadata

    def test_baseline_config_equals_default(self):
        camp = CAMPAIGNS["TOY-CFG"]
        kwargs = camp.scenario_kwargs(True, camp.variants(True)[0])
        assert kwargs["config"] == DEFAULT_CONFIG.with_(
            lynx=DEFAULT_CONFIG.lynx)

    def test_sim_backend_knob(self):
        camp = Campaign(
            "TOY-BACKEND", "toy", "test", scenario=_toy_scenario,
            components=[Component(
                "scheduler",
                [Knob("sim.backend", values=("heap", "wheel"),
                      baseline="heap", config="sim_backend")])])
        variants = camp.variants(fast=True)
        configs = [camp.scenario_kwargs(True, v)["config"] for v in variants]
        assert [c.sim_backend for c in configs] == ["heap", "wheel"]


class TestImportance:
    def test_helpful_component_positive(self):
        # baseline boost=True scores ~10.x, ablated ~5.x: the component
        # helps, importance is positive, not harmful.
        camp = _toy_campaign("TOY-IMP1")
        with telemetry.scope():
            outcome = camp.run(fast=True, seed=42)
        (entry,) = outcome.importance
        assert entry["component"] == "booster"
        assert entry["knob"] == "boost"
        base, off = outcome.values
        expected = -(off - base) / abs(base)
        assert entry["importance"] == pytest.approx(expected)
        assert entry["importance"] > 0 and not entry["harmful"]

    def test_harmful_component_flagged(self):
        # flip the baseline: now the ablation (boost=True) improves the
        # metric, so the baseline setting is harmful.
        camp = Campaign(
            "TOY-IMP2", "toy", "test", scenario=_toy_scenario,
            components=[Component(
                "booster",
                [Knob("boost", values=(False, True), baseline=False,
                      kwarg="boost")])],
            row=lambda ctx, v, value: {"value": value},
            metric="value")
        with telemetry.scope():
            outcome = camp.run(fast=True, seed=42)
        (entry,) = outcome.importance
        assert entry["importance"] < 0 and entry["harmful"]

    def test_lower_is_better_flips_sign(self):
        camp = Campaign(
            "TOY-IMP3", "toy", "test", scenario=_toy_scenario,
            components=[Component(
                "booster",
                [Knob("boost", values=(True, False), baseline=True,
                      kwarg="boost")])],
            row=lambda ctx, v, value: {"value": value},
            metric="value", higher_is_better=False)
        with telemetry.scope():
            outcome = camp.run(fast=True, seed=42)
        (entry,) = outcome.importance
        # the ablation lowers the metric; with lower-is-better that
        # means the ablation wins -> negative importance, harmful.
        assert entry["importance"] < 0 and entry["harmful"]

    def test_signals_from_snapshot_deltas(self):
        camp = _toy_campaign("TOY-IMP4")
        with telemetry.scope():
            outcome = camp.run(fast=True, seed=42)
        (entry,) = outcome.importance
        signals = entry["signals"]
        # boost=False emits fewer responses/events and higher latency
        assert signals["goodput"] < 0
        assert signals["kernel_events"] < 0
        assert signals["p99_us"] > 0
        assert signals["core_burn"] is None  # toy has no gauges

    def test_pairwise_variants_excluded_from_importance(self):
        camp = Campaign(
            "TOY-IMP5", "toy", "test", scenario=_toy_scenario,
            components=[
                Component("a", [Knob("boost", values=(True, False),
                                     kwarg="boost")]),
                Component("b", [Knob("extra", values=(0.0, 1.0),
                                     kwarg="extra")]),
            ],
            row=lambda ctx, v, value: {"value": value},
            metric="value", pairwise=True)
        with telemetry.scope():
            outcome = camp.run(fast=True, seed=42)
        for entry in outcome.importance:
            assert len(entry["variants"]) == 1  # one-offs only


class TestSnapshotSignals:
    def test_empty_snapshot_all_none(self):
        signals = snapshot_signals({})
        assert signals == {"goodput": None, "p99_us": None,
                           "kernel_events": None, "core_burn": None}

    def test_gauge_means_summed_as_core_burn(self):
        snap = {
            "cpu.host.utilization": {"kind": "gauge", "area": 500.0,
                                     "elapsed": 1000.0, "max": 1.0},
            "cpu.snic.utilization": {"kind": "gauge", "area": 250.0,
                                     "elapsed": 1000.0, "max": 0.5},
        }
        assert snapshot_signals(snap)["core_burn"] == pytest.approx(0.75)

    def test_client_rates_summed_as_goodput(self):
        snap = {
            "net.client.10.0.9.1.responses":
                {"kind": "rate", "count": 100, "elapsed": 1000.0},
            "net.client.10.0.9.2.responses":
                {"kind": "rate", "count": 300, "elapsed": 1000.0},
            "net.server.responses":  # not a client rate
                {"kind": "rate", "count": 999, "elapsed": 1000.0},
        }
        assert snapshot_signals(snap)["goodput"] == pytest.approx(4e5)


class TestRegistryAndRunners:
    def test_campaigns_register_and_find(self):
        camp = _toy_campaign("TOY-REG")
        assert CAMPAIGNS["TOY-REG"] is camp
        assert find_campaign("TOY-REG") is camp
        with pytest.raises(ConfigError):
            find_campaign("TOY-NO-SUCH")

    def test_run_campaigns_unknown_id_rejected(self):
        with pytest.raises(ConfigError):
            run_campaigns(["TOY-NO-SUCH"])

    def test_run_campaigns_returns_outcomes_in_order(self):
        _toy_campaign("TOY-RUN1")
        _toy_campaign("TOY-RUN2")
        with telemetry.scope():
            outs = run_campaigns(["TOY-RUN2", "TOY-RUN1"], fast=True,
                                 seed=42)
        assert [o.campaign.exp_id for o in outs] == ["TOY-RUN2", "TOY-RUN1"]

    def test_call_returns_experiment_result_with_outcome(self):
        camp = _toy_campaign("TOY-CALL")
        with telemetry.scope():
            result = camp(fast=True, seed=42)
        assert result.exp_id == "TOY-CALL"
        assert len(result.rows) == 2
        assert result.campaign.rows is result.rows \
            or result.campaign.rows == result.rows

    def test_describe_lists_every_campaign(self):
        camp = _toy_campaign("TOY-DESC", summary="a toy study")
        text = campaign_mod.describe([camp])
        assert "TOY-DESC" in text and "a toy study" in text
        assert "``boost``" in text


class TestJobsForwarding:
    def test_ablations_run_forwards_jobs(self, monkeypatch):
        # Regression: ablations.run() used to drop the jobs argument on
        # the floor, silently serializing the whole --extras suite.
        camp = _toy_campaign("TOY-JOBS")
        seen = []
        real = campaign_mod.run_points

        def spy(points, jobs=None):
            seen.append(jobs)
            return real(points, jobs=jobs)

        monkeypatch.setattr(campaign_mod, "run_points", spy)
        monkeypatch.setattr(ablations, "ALL_STUDIES", (camp,))
        with telemetry.scope():
            merged = ablations.run(fast=True, seed=42, jobs=3)
        assert seen == [3]
        assert merged.exp_id == "ABL"
        assert "TOY-JOBS" in merged.notes[0]

    def test_campaign_call_forwards_jobs(self, monkeypatch):
        camp = _toy_campaign("TOY-JOBS2")
        seen = []
        real = campaign_mod.run_points

        def spy(points, jobs=None):
            seen.append(jobs)
            return real(points, jobs=jobs)

        monkeypatch.setattr(campaign_mod, "run_points", spy)
        with telemetry.scope():
            camp(fast=True, seed=42, jobs=2)
        assert seen == [2]


class TestToDoc:
    def test_doc_shape_round_trips_through_json(self):
        camp = _toy_campaign("TOY-DOC")
        with telemetry.scope():
            outcome = camp.run(fast=True, seed=42)
        doc = json.loads(json.dumps(outcome.to_doc()))
        assert doc["exp_id"] == "TOY-DOC"
        assert doc["metric"] == "value"
        assert doc["baseline"] == "True"
        assert [v["baseline"] for v in doc["variants"]] == [True, False]
        assert all(len(v["run_id"]) == 12 for v in doc["variants"])
        assert doc["importance"][0]["component"] == "booster"
        scores = [v["score"] for v in doc["variants"]]
        assert scores == [v["row"]["value"] for v in doc["variants"]]
