"""Golden campaign determinism (DESIGN.md §4.8 + §4.12).

One real (but cheap) campaign — ABL-CO, two simulated variants — must
produce bit-identical rows, run ids, and importance scores:

* at ``--jobs 1`` vs ``--jobs 4`` (the sweep executor clamps to the
  machine's usable cores, so on a small runner both may run inline —
  the contract under test is that the jobs knob can never change
  values, clamped or not);
* across the ``heap`` and ``wheel`` scheduler backends (§4.11's
  bit-identity contract extends through snapshot-derived importance).
"""

import json

import pytest

from repro import telemetry
from repro.experiments.ablations import coalescing_study
from repro.sim import configure_backend


def _doc(jobs, backend):
    configure_backend(backend)
    try:
        with telemetry.scope():
            outcome = coalescing_study.run(fast=True, seed=42, jobs=jobs)
    finally:
        configure_backend(None)
    # wall-clock-free by construction: to_doc carries rows, run ids,
    # scores, and snapshot-derived importance, never raw wall seconds
    return json.loads(json.dumps(outcome.to_doc()))


@pytest.fixture(scope="module")
def reference():
    return _doc(jobs=1, backend="heap")


class TestCampaignDeterminism:
    def test_parallel_matches_serial(self, reference):
        assert _doc(jobs=4, backend="heap") == reference

    def test_wheel_backend_matches_heap(self, reference):
        assert _doc(jobs=1, backend="wheel") == reference

    def test_parallel_wheel_matches_serial_heap(self, reference):
        assert _doc(jobs=4, backend="wheel") == reference

    def test_reference_shape(self, reference):
        assert reference["exp_id"] == "ABL-CO"
        tokens = [v["token"] for v in reference["variants"]]
        assert tokens == ["True", "False"]
        (entry,) = reference["importance"]
        assert entry["component"] == "coalescing"
        assert entry["importance"] is not None
