"""The command-line experiment runner."""

import pytest

from repro.experiments import testbed
from repro.experiments.__main__ import main
from repro.sim.trace import enabled_tracers


class TestCli:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "E01" in out and "E15" in out

    def test_run_single_experiment(self, capsys):
        assert main(["E01"]) == 0
        out = capsys.readouterr().out
        assert "[E01]" in out
        assert "overhead" in out

    def test_unknown_id_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["E99"])

    def test_lowercase_ids_accepted(self, capsys):
        assert main(["e01"]) == 0
        assert "[E01]" in capsys.readouterr().out

    def test_seed_flag(self, capsys):
        assert main(["--seed", "7", "E01"]) == 0


class TestChannelFlags:
    def test_batching_flags_do_not_leak_config(self, capsys):
        assert main(["E01", "--batch-size", "4", "--poll-batch", "2",
                     "--backpressure"]) == 0
        assert "[E01]" in capsys.readouterr().out
        assert testbed.active_config() is None  # reset after the run

    def test_batch_size_must_be_positive(self, capsys):
        with pytest.raises(SystemExit):
            main(["E01", "--batch-size", "0"])

    def test_trace_channel_prints_and_clears(self, capsys):
        assert main(["E09", "--trace-channel", "wire",
                     "--trace-limit", "3"]) == 0
        out = capsys.readouterr().out
        assert "trace[E09] channel~'wire'" in out
        assert "wire->" in out
        assert enabled_tracers() == []  # registry drained afterwards
        assert testbed.active_config() is None
