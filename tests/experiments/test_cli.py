"""The command-line experiment runner."""

import pytest

from repro.experiments.__main__ import main


class TestCli:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "E01" in out and "E15" in out

    def test_run_single_experiment(self, capsys):
        assert main(["E01"]) == 0
        out = capsys.readouterr().out
        assert "[E01]" in out
        assert "overhead" in out

    def test_unknown_id_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["E99"])

    def test_lowercase_ids_accepted(self, capsys):
        assert main(["e01"]) == 0
        assert "[E01]" in capsys.readouterr().out

    def test_seed_flag(self, capsys):
        assert main(["--seed", "7", "E01"]) == 0
