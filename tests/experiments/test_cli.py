"""The command-line experiment runner."""

import pytest

from repro.experiments import testbed
from repro.experiments.__main__ import main
from repro.sim.trace import enabled_tracers


class TestCli:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "E01" in out and "E15" in out

    def test_run_single_experiment(self, capsys):
        assert main(["E01"]) == 0
        out = capsys.readouterr().out
        assert "[E01]" in out
        assert "overhead" in out

    def test_unknown_id_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["E99"])

    def test_lowercase_ids_accepted(self, capsys):
        assert main(["e01"]) == 0
        assert "[E01]" in capsys.readouterr().out

    def test_seed_flag(self, capsys):
        assert main(["--seed", "7", "E01"]) == 0


class TestChannelFlags:
    def test_batching_flags_do_not_leak_config(self, capsys):
        assert main(["E01", "--batch-size", "4", "--poll-batch", "2",
                     "--backpressure"]) == 0
        assert "[E01]" in capsys.readouterr().out
        assert testbed.active_config() is None  # reset after the run

    def test_batch_size_must_be_positive(self, capsys):
        with pytest.raises(SystemExit):
            main(["E01", "--batch-size", "0"])

    def test_trace_channel_prints_and_clears(self, capsys):
        assert main(["E09", "--trace-channel", "wire",
                     "--trace-limit", "3"]) == 0
        out = capsys.readouterr().out
        assert "trace[E09] channel~'wire'" in out
        assert "wire->" in out
        assert enabled_tracers() == []  # registry drained afterwards
        assert testbed.active_config() is None


class TestMetricsFlag:
    def test_bare_flag_pretty_prints_registry(self, capsys):
        assert main(["E01", "--metrics"]) == 0
        out = capsys.readouterr().out
        assert "telemetry" in out
        assert "sim.kernel.events_processed" in out

    def test_path_writes_schema_tagged_json(self, capsys, tmp_path):
        from repro.telemetry import load_metrics

        path = tmp_path / "metrics.json"
        assert main(["E01", "--metrics", str(path)]) == 0
        assert "metrics written to" in capsys.readouterr().out
        metrics = load_metrics(str(path))
        assert metrics["sim.kernel.events_processed"]["value"] > 0
        kinds = {snap["kind"] for snap in metrics.values()}
        assert {"counter", "rate", "gauge", "peak"} <= kinds

    def test_run_scope_does_not_leak_into_root(self):
        from repro import telemetry

        root_before = len(telemetry.registry())
        assert main(["E01", "--metrics", "/dev/null"]) == 0
        assert len(telemetry.registry()) == root_before

    def test_kernel_stats_still_prints_via_shim(self, capsys):
        from repro.sim import active_backend

        assert main(["E01", "--kernel-stats"]) == 0
        out = capsys.readouterr().out
        # The heap header stays byte-identical to the pre-backend days;
        # non-default backends are tagged (e.g. under REPRO_SIM_BACKEND).
        backend = active_backend()
        header = ("simulator kernel:" if backend == "heap"
                  else "simulator kernel [%s backend]:" % backend)
        assert header in out
        assert "events processed" in out

    def test_kernel_stats_reports_events_per_request(self, capsys):
        # E05 drives real request planes; E01 is a micro-benchmark with
        # no data plane, so its requests-completed is legitimately zero.
        assert main(["E05", "--kernel-stats"]) == 0
        out = capsys.readouterr().out
        # An experiment that completes requests must report a non-zero
        # events-per-request figure (DESIGN.md §4.14): the whole frame
        # story is making this number drop.
        line = next(ln for ln in out.splitlines() if "events/request" in ln)
        assert float(line.split()[-1]) > 0
        line = next(ln for ln in out.splitlines()
                    if "requests completed" in ln)
        assert int(line.split()[-1].replace(",", "")) > 0


class TestCampaignSubcommand:
    def test_list(self, capsys):
        assert main(["campaign", "--list"]) == 0
        out = capsys.readouterr().out
        assert "ABL-CO" in out and "ABL-GC" in out

    def test_run_prints_tables_run_ids_and_importance(self, capsys):
        assert main(["campaign", "ABL-CO", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "[ABL-CO]" in out
        assert "(baseline)" in out
        assert "component importance" in out
        assert "coalescing" in out

    def test_out_writes_loadable_document(self, capsys, tmp_path):
        from repro.telemetry import load_campaign

        path = tmp_path / "campaign.json"
        assert main(["campaign", "ABL-CO", "--out", str(path)]) == 0
        assert "campaign document written to" in capsys.readouterr().out
        doc = load_campaign(str(path))
        (entry,) = doc["campaigns"]
        assert entry["exp_id"] == "ABL-CO"
        assert entry["importance"][0]["knob"] == "coalescing"
        assert doc["meta"]["seed"] == 42

    def test_lowercase_ids_accepted(self, capsys):
        assert main(["campaign", "abl-co"]) == 0
        assert "[ABL-CO]" in capsys.readouterr().out

    def test_unknown_id_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["campaign", "ABL-NO-SUCH"])

    def test_fast_and_full_mutually_exclusive(self, capsys):
        with pytest.raises(SystemExit):
            main(["campaign", "ABL-CO", "--fast", "--full"])

    def test_scope_does_not_leak_into_root(self):
        from repro import telemetry

        root_before = len(telemetry.registry())
        assert main(["campaign", "ABL-CO"]) == 0
        assert len(telemetry.registry()) == root_before
