"""The shared deployment builders used by every experiment."""

import pytest

from repro.apps.base import EchoApp, SpinApp
from repro.experiments.common import (
    ALL_DESIGNS,
    HOST_CENTRIC,
    LYNX_BLUEFIELD,
    LYNX_XEON_1,
    LYNX_XEON_6,
    deploy,
    measure_closed_loop,
    measure_saturation,
)
from repro.net.packet import UDP


class TestDeploy:
    @pytest.mark.parametrize("design", ALL_DESIGNS)
    def test_every_design_serves_requests(self, design):
        dep = deploy(design, app=EchoApp(), n_mqueues=2, proto=UDP)
        tput, latency = measure_closed_loop(dep, lambda i: b"ping",
                                            concurrency=2, warmup=5000.0,
                                            measure=20000.0)
        assert tput > 1000
        assert latency.count > 10

    def test_lynx_designs_expose_service_handle(self):
        dep = deploy(LYNX_BLUEFIELD, app=EchoApp(), n_mqueues=3)
        assert dep.service is not None
        assert len(dep.service.mqueues) == 3

    def test_host_centric_has_no_service_handle(self):
        dep = deploy(HOST_CENTRIC, app=EchoApp())
        assert dep.service is None

    def test_bluefield_address_is_the_snic(self):
        dep = deploy(LYNX_BLUEFIELD, app=EchoApp())
        assert dep.address.ip == "10.0.0.100"
        assert deploy(LYNX_XEON_1, app=EchoApp()).address.ip == "10.0.0.1"

    def test_xeon_core_counts(self):
        one = deploy(LYNX_XEON_1, app=EchoApp())
        six = deploy(LYNX_XEON_6, app=EchoApp())
        assert one.server.workers.count == 1
        assert six.server.workers.count == 6


class TestMeasurement:
    def test_saturation_reports_delivered_not_offered(self):
        dep = deploy(LYNX_BLUEFIELD, app=SpinApp(200.0), n_mqueues=1)
        delivered = measure_saturation(dep, lambda i: b"x" * 16,
                                       offered_per_sec=200000,
                                       warmup=10000.0, measure=30000.0)
        # a single 200us threadblock cannot exceed ~5K/s
        assert delivered < 7000

    def test_results_deterministic_for_fixed_seed(self):
        def once():
            dep = deploy(LYNX_BLUEFIELD, app=SpinApp(50.0), seed=9)
            return measure_closed_loop(dep, lambda i: b"x", concurrency=2,
                                       warmup=5000.0, measure=20000.0)[0]

        assert once() == once()
