"""Determinism: fixed seed -> bit-identical result rows.

The golden fixture was captured before the kernel fast-path work
(pooled charges, detached tasks, callback delivery ops), so these tests
pin two properties at once: repeated runs agree with each other, and
the optimised kernel agrees with the original event ordering.

E01 and E15 are the two cheapest experiments that still cross every
optimised layer: RDMA delivery ops, charge pooling, the doorbell sweep
loop, and (for E15) the consistency-barrier plan.
"""

import json
import os

import pytest

from repro.experiments import e01_invocation_overhead, e15_consistency_barrier

FIXTURE = os.path.join(os.path.dirname(__file__), "..", "fixtures",
                       "golden_fast_rows.json")


@pytest.fixture(scope="module")
def golden():
    with open(FIXTURE) as fh:
        return json.load(fh)


def _rows(module):
    result = module.run(fast=True, seed=42)
    # Round-trip through JSON so float formatting matches the fixture.
    return json.loads(json.dumps(result.rows))


class TestGoldenRows:
    def test_e01_rows_bit_identical(self, golden):
        assert _rows(e01_invocation_overhead) == golden["E01"]

    def test_e15_rows_bit_identical(self, golden):
        assert _rows(e15_consistency_barrier) == golden["E15"]

    def test_e01_repeatable_within_process(self, golden):
        first = _rows(e01_invocation_overhead)
        second = _rows(e01_invocation_overhead)
        assert first == second == golden["E01"]


class TestUnarmedFaultLayer:
    """PR 5's zero-overhead guarantee: with the fault-injection layer
    importable (it always is — E16 pulls it in) but no schedule armed,
    the golden rows captured before the layer existed still match."""

    def test_e01_golden_with_fault_layer_loaded(self, golden):
        import repro.faults  # noqa: F401 — presence is the point

        assert _rows(e01_invocation_overhead) == golden["E01"]

    def test_e15_golden_with_fault_layer_loaded(self, golden):
        import repro.faults  # noqa: F401

        assert _rows(e15_consistency_barrier) == golden["E15"]
