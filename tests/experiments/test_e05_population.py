"""E05's fast preset rides the flyweight population plane (§4.13).

The re-based grid must stay inside the determinism contract: rows
bit-identical at ``jobs=1`` vs ``jobs=4`` (the executor clamps to
usable cores — the knob can never change values) and across the
``heap``/``wheel`` scheduler backends.  Because ``wheel`` resolves
``frame_exec`` on by default and ``heap`` off, the backend axis also
pins scalar-vs-frame execution (DESIGN.md §4.14) end to end through a
real deployment grid.
"""

import json

import pytest

from repro.experiments import e05_fig7_latency as e05
from repro.sim import configure_backend


def _rows(jobs, backend):
    configure_backend(backend)
    try:
        result = e05.run(fast=True, seed=42, jobs=jobs)
    finally:
        configure_backend(None)
    return json.loads(json.dumps(result.rows))


@pytest.fixture(scope="module")
def reference():
    return _rows(jobs=1, backend="heap")


class TestE05PopulationDeterminism:
    def test_parallel_matches_serial(self, reference):
        assert _rows(jobs=4, backend="heap") == reference

    def test_wheel_backend_matches_heap(self, reference):
        assert _rows(jobs=1, backend="wheel") == reference

    def test_parallel_wheel_matches_serial_heap(self, reference):
        assert _rows(jobs=4, backend="wheel") == reference

    def test_reference_shape(self, reference):
        assert len(reference) == 6
        for row in reference:
            assert row["bluefield_p50"] > 0
            assert row["xeon6_p50"] > 0
            # slowdown is derived from the unrounded p50s, the row's
            # p50 columns are rounded to 0.1us — compare loosely
            assert row["slowdown"] == pytest.approx(
                row["bluefield_p50"] / row["xeon6_p50"], abs=0.01)
