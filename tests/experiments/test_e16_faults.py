"""E16: fault-schedule sweep shape, escalation, and jobs-N determinism."""

import json

import pytest

from repro.experiments import e16_faults
from repro.experiments.common import HOST_CENTRIC, LYNX_BLUEFIELD


@pytest.fixture(scope="module")
def result():
    return e16_faults.run(fast=True, seed=42, jobs=1)


class TestShape:
    def test_one_row_per_design_and_level(self, result):
        assert len(result.rows) == 2 * len(e16_faults.LEVELS)
        for design in (HOST_CENTRIC, LYNX_BLUEFIELD):
            for level in e16_faults.LEVELS:
                assert result.find(design=design, level=level)

    def test_control_rows_are_fault_free(self, result):
        for design in (HOST_CENTRIC, LYNX_BLUEFIELD):
            row = result.find(design=design, level="none")
            assert row["injected"] == 0
            assert row["retries"] == 0
            assert row["errors"] == 0

    def test_faulted_rows_inject_and_degrade(self, result):
        for design in (HOST_CENTRIC, LYNX_BLUEFIELD):
            clean = result.find(design=design, level="none")
            worst = result.find(design=design,
                                level="loss+stall+outage")
            assert worst["injected"] > 0
            assert worst["retries"] > 0
            assert worst["goodput_krps"] < clean["goodput_krps"]
            assert worst["p99_us"] > clean["p99_us"]

    def test_lynx_sheds_during_outage(self, result):
        row = result.find(design=LYNX_BLUEFIELD, level="loss+stall+outage")
        assert row["shed"] > 0
        assert row["recovered"] > 0
        # The host-centric baseline has no shed path: it queues.
        hc = result.find(design=HOST_CENTRIC, level="loss+stall+outage")
        assert hc["shed"] == 0


class TestDeterminism:
    def test_jobs_1_and_4_rows_bit_identical(self, result):
        # The E16 acceptance bar: the fault pattern, retry jitter, and
        # every counter reproduce exactly under the parallel executor.
        parallel = e16_faults.run(fast=True, seed=42, jobs=4)
        assert json.dumps(result.rows) == json.dumps(parallel.rows)

    def test_different_seed_different_fault_pattern(self, result):
        other = e16_faults.run(fast=True, seed=43, jobs=1)
        assert json.dumps(other.rows) != json.dumps(result.rows)
