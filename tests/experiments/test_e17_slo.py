"""E17: sustainable-load bisection, frontier shape, and determinism."""

import json

import pytest

from repro.errors import ConfigError
from repro.experiments import e17_slo_frontier as e17
from repro.experiments.common import HOST_CENTRIC, LYNX_BLUEFIELD
from repro.experiments.slo import find_sustainable_load
from repro.experiments.sweep import derive_seed
from repro.sim import configure_backend


def _step_trial(knee):
    """A fake server: p99 is 10us below the knee, 10x the SLO above."""

    def trial(rate, seed):
        overloaded = rate > knee
        return {"p_tail_us": 500.0 if overloaded else 10.0,
                "offered_per_sec": rate * 1e6,
                "delivered_per_sec": rate * 1e6 * (0.5 if overloaded
                                                   else 1.0)}

    return trial


class TestFindSustainableLoad:
    def test_bisects_to_the_knee(self):
        found = find_sustainable_load(_step_trial(0.3), 0.1, 0.9, 50.0,
                                      iters=8)
        assert found.rate == pytest.approx(0.3, abs=(0.9 - 0.1) / 2 ** 8)
        assert found.knee.ok and found.knee.p_tail == 10.0
        assert found.per_sec == found.rate * 1e6
        # bracket ends probed first, then the bisection probes
        assert len(found.trials) == 2 + 8
        assert found.trials[0].rate == 0.1
        assert found.trials[1].rate == 0.9

    def test_nothing_sustainable_returns_zero(self):
        found = find_sustainable_load(_step_trial(0.05), 0.1, 0.9, 50.0,
                                      iters=5)
        assert found.rate == 0.0 and found.knee is None
        # low end failed: no bisection probes were spent
        assert len(found.trials) == 2

    def test_whole_bracket_ok_returns_hi(self):
        found = find_sustainable_load(_step_trial(2.0), 0.1, 0.9, 50.0,
                                      iters=5)
        assert found.rate == 0.9
        assert len(found.trials) == 2

    def test_goodput_floor_rejects_silent_droppers(self):
        # p99 fine, but the server only answers half the offered load.
        def trial(rate, seed):
            return {"p_tail_us": 10.0, "offered_per_sec": rate * 1e6,
                    "delivered_per_sec": rate * 5e5}

        found = find_sustainable_load(trial, 0.1, 0.9, 50.0,
                                      goodput_floor=0.98, iters=3)
        assert found.rate == 0.0

    def test_nan_tail_is_not_sustainable(self):
        def trial(rate, seed):
            return {"p_tail_us": float("nan"),
                    "offered_per_sec": rate * 1e6,
                    "delivered_per_sec": rate * 1e6}

        found = find_sustainable_load(trial, 0.1, 0.9, 50.0, iters=3)
        assert found.rate == 0.0

    def test_trial_seeds_derived_from_index(self):
        seeds = []

        def trial(rate, seed):
            seeds.append(seed)
            return _step_trial(0.3)(rate, seed)

        find_sustainable_load(trial, 0.1, 0.9, 50.0, iters=3, seed=7)
        assert seeds == [derive_seed(7, ("slo-trial", i))
                        for i in range(len(seeds))]
        assert len(set(seeds)) == len(seeds)

    def test_bracket_validated(self):
        with pytest.raises(ConfigError):
            find_sustainable_load(_step_trial(0.3), 0.0, 0.9, 50.0)
        with pytest.raises(ConfigError):
            find_sustainable_load(_step_trial(0.3), 0.5, 0.5, 50.0)


class TestBracketSaturated:
    """Regression: a bracket whose high end sustains the SLO used to be
    indistinguishable from a converged knee — the flag lets callers
    widen instead of reporting the artifact."""

    def test_flag_set_when_the_whole_bracket_sustains(self):
        found = find_sustainable_load(_step_trial(2.0), 0.1, 0.9, 50.0,
                                      iters=5)
        assert found.bracket_saturated
        assert found.rate == 0.9

    def test_flag_clear_on_a_real_knee(self):
        found = find_sustainable_load(_step_trial(0.3), 0.1, 0.9, 50.0,
                                      iters=5)
        assert not found.bracket_saturated

    def test_flag_clear_when_nothing_sustains(self):
        found = find_sustainable_load(_step_trial(0.05), 0.1, 0.9, 50.0,
                                      iters=5)
        assert not found.bracket_saturated


class TestBracketWidening:
    """E17's response to a saturated bracket: re-search [hi, 4*hi] once."""

    def _pin_trial(self, monkeypatch, knee):
        def fake(design, arrivals, rate, seed, warmup, measure):
            return _step_trial(knee)(rate, seed)

        monkeypatch.setitem(e17.TRIALS, "memcached", fake)

    def _frontier(self, lo, hi):
        return e17.measure_frontier("memcached", HOST_CENTRIC, seed=42,
                                    warmup=10.0, measure=10.0, iters=6,
                                    lo=lo, hi=hi)

    def test_saturated_bracket_widens_once_and_finds_the_knee(
            self, monkeypatch):
        self._pin_trial(monkeypatch, knee=0.3)
        out = self._frontier(lo=0.05, hi=0.1)   # knee above the bracket
        assert out["bracket_widened"]
        assert not out["bracket_saturated"]     # the widened search knelt
        assert out["sustainable_per_sec"] == pytest.approx(0.3e6, rel=0.05)

    def test_normal_knee_does_not_widen(self, monkeypatch):
        self._pin_trial(monkeypatch, knee=0.3)
        out = self._frontier(lo=0.1, hi=0.9)
        assert not out["bracket_widened"]
        assert not out["bracket_saturated"]
        assert out["sustainable_per_sec"] == pytest.approx(0.3e6, rel=0.05)

    def test_widened_bracket_can_still_saturate(self, monkeypatch):
        self._pin_trial(monkeypatch, knee=10.0)
        out = self._frontier(lo=0.05, hi=0.1)   # knee above 4*hi too
        assert out["bracket_widened"]
        assert out["bracket_saturated"]         # reported, not hidden
        assert out["sustainable_per_sec"] == pytest.approx(0.4e6)


@pytest.fixture(scope="module")
def result():
    # Tiny windows + 3 bisection probes: shape/determinism, not accuracy.
    return e17.run(fast=True, seed=42, measure=8000.0, iters=3, jobs=1)


class TestShape:
    def test_one_row_per_workload_and_design(self, result):
        assert len(result.rows) == len(e17.WORKLOADS) * len(e17.DESIGNS)
        for workload in e17.WORKLOADS:
            for design in (HOST_CENTRIC, LYNX_BLUEFIELD):
                row = result.find(workload=workload, design=design)
                assert row["slo_p99_us"] == e17.SLO_US[workload]
                assert row["trials"] >= 2
                assert row["arrivals"] == "poisson"

    def test_sustainable_rates_found(self, result):
        for workload in e17.WORKLOADS:
            for design in (HOST_CENTRIC, LYNX_BLUEFIELD):
                row = result.find(workload=workload, design=design)
                assert row["sustainable_krps"] > 0
                assert row["p99_at_knee_us"] <= row["slo_p99_us"]
                assert row["goodput_at_knee"] >= e17.GOODPUT_FLOOR


class TestDeterminism:
    def test_rows_bit_identical_across_jobs_and_backends(self, result):
        # The E17 acceptance bar: --jobs 1/4 x heap/wheel all agree.
        baseline = json.dumps(result.rows)
        for jobs, backend in ((4, None), (1, "wheel"), (4, "wheel")):
            configure_backend(backend)
            try:
                again = e17.run(fast=True, seed=42, measure=8000.0,
                                iters=3, jobs=jobs)
            finally:
                configure_backend(None)
            assert json.dumps(again.rows) == baseline, \
                "E17 rows diverged at jobs=%s backend=%s" % (jobs, backend)

    def test_different_seed_different_rows(self, result):
        other = e17.run(fast=True, seed=43, measure=8000.0, iters=3,
                        jobs=1)
        assert json.dumps(other.rows) != json.dumps(result.rows)
