"""E18: cluster scale-out shape, steering acceptance, failover
determinism across --jobs 1/4 x heap/wheel (DESIGN.md §4.15)."""

import json

import pytest

from repro import telemetry
from repro.errors import FaultError
from repro.experiments import e18_cluster as e18
from repro.faults import FaultSchedule, RackFailure
from repro.sim import configure_backend


@pytest.fixture(scope="module")
def result():
    return e18.run(fast=True, seed=42, jobs=1)


class TestShape:
    def test_baseline_plus_one_knob_off_grid(self, result):
        tokens = [row["variant"] for row in result.rows]
        assert tokens == ["baseline", "policy=round_robin",
                          "policy=least_loaded", "nodes=4", "nodes=2",
                          "failover=True"]

    def test_rows_carry_the_scaleout_metrics(self, result):
        for row in result.rows:
            assert row["goodput_krps"] > 0
            assert row["p99_us"] > 0
            assert row["miss_rate"] < 0.2

    def test_fault_free_variants_drop_nothing_rack_down(self, result):
        for row in result.rows:
            if row["failover"] == "none":
                assert row["rack_down_drops"] == 0


class TestSteeringAcceptance:
    def test_p2c_beats_round_robin_p99_at_eight_replicas(self, result):
        # The E18 acceptance bar: under Zipf keys and 5x-heavy hot
        # values, two depth probes beat a depth-blind rotation.
        p2c = result.find(variant="baseline")
        rr = result.find(variant="policy=round_robin")
        assert p2c["nodes"] == rr["nodes"] == 8
        assert p2c["p99_us"] < rr["p99_us"]

    def test_two_replicas_saturate(self, result):
        # Fixed offered load over a quarter of the capacity: the small
        # cluster must visibly fall off the goodput/latency cliff.
        big = result.find(variant="baseline")
        small = result.find(variant="nodes=2")
        assert small["goodput_krps"] < 0.7 * big["goodput_krps"]
        assert small["p99_us"] > 10 * big["p99_us"]


class TestFailover:
    # Direct scenario calls run in a telemetry scope: the injector's
    # faults.* counters are registry-wide, and the module fixture's
    # campaign already merged its own failover window into the root.

    def test_outage_is_injected_recovered_and_sampled(self):
        with telemetry.scope():
            out = e18.cluster_scenario("p2c", 4, True, warmup=1000.0,
                                       measure=5000.0, seed=7)
        assert out["faults_injected"] == 1
        assert out["faults_recovered"] == 1
        assert out["goodput_per_sec"] > 0
        assert len(out["timeline_krps"]) == e18.TIMELINE_BUCKETS

    def test_fault_free_run_is_quiet(self):
        with telemetry.scope():
            out = e18.cluster_scenario("p2c", 4, False, warmup=1000.0,
                                       measure=5000.0, seed=7)
        assert out["faults_injected"] == 0
        assert out["rack_down_drops"] == 0
        assert out["timeouts"] == 0
        assert len(out["timeline_krps"]) == e18.TIMELINE_BUCKETS

    def test_rack_failure_spec_round_trips(self):
        schedule = FaultSchedule([RackFailure(rack=1, start=100.0,
                                              duration=50.0)])
        clone = FaultSchedule.from_dicts(schedule.to_dicts())
        (spec,) = list(clone)
        assert isinstance(spec, RackFailure)
        assert (spec.rack, spec.start, spec.duration) == (1, 100.0, 50.0)

    def test_rack_failure_validates_the_rack(self):
        with pytest.raises(FaultError):
            RackFailure(rack=-1, start=0.0, duration=1.0)


class TestDeterminism:
    def test_rows_bit_identical_across_jobs_and_backends(self, result):
        # The E18 acceptance bar: the rack-kill schedule, the ring, and
        # the steering draws land identically at --jobs 1/4 x heap/wheel.
        baseline = json.dumps(result.rows)
        for jobs, backend in ((4, None), (1, "wheel"), (4, "wheel")):
            configure_backend(backend)
            try:
                again = e18.run(fast=True, seed=42, jobs=jobs)
            finally:
                configure_backend(None)
            assert json.dumps(again.rows) == baseline, \
                "E18 rows diverged at jobs=%s backend=%s" % (jobs, backend)

    def test_different_seed_different_rows(self, result):
        other = e18.run(fast=True, seed=43, jobs=1)
        assert json.dumps(other.rows) != json.dumps(result.rows)
