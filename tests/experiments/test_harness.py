"""Experiment harness plumbing and registry."""

import pytest

from repro.experiments import REGISTRY
from repro.experiments.base import ExperimentResult, krps


class TestRegistry:
    def test_covers_every_paper_figure_and_table(self):
        assert sorted(REGISTRY) == ["E%02d" % i for i in range(1, 19)]

    def test_every_module_has_run(self):
        for module in REGISTRY.values():
            assert callable(module.run)


class TestExperimentResult:
    def _result(self):
        result = ExperimentResult("EXX", "title", "Fig X")
        result.add(a=1, b="x")
        result.add(a=2, b="y")
        return result

    def test_add_and_column(self):
        result = self._result()
        assert result.column("a") == [1, 2]

    def test_find(self):
        assert self._result().find(a=2)["b"] == "y"

    def test_find_missing_raises(self):
        with pytest.raises(KeyError):
            self._result().find(a=99)

    def test_table_renders_all_rows(self):
        table = self._result().table()
        assert "a" in table and "x" in table and "y" in table
        assert len(table.splitlines()) == 4

    def test_render_includes_notes(self):
        result = self._result()
        result.note("important caveat")
        assert "important caveat" in result.render()

    def test_empty_table(self):
        assert ExperimentResult("E", "t", "f").table() == "(no rows)"

    def test_table_unions_columns_across_rows(self):
        # Later rows may add columns the first row lacks (knee summary
        # rows, for instance); the header must cover all of them.
        result = ExperimentResult("EXX", "title", "Fig X")
        result.add(a=1)
        result.add(a=2, extra="late")
        table = result.table()
        header = table.splitlines()[0]
        assert "extra" in header
        assert "late" in table

    def test_krps(self):
        assert krps(3500) == 3.5


class TestDeterminism:
    def test_same_seed_same_result(self):
        from repro.experiments import e01_invocation_overhead as e01

        r1 = e01.run(fast=True, seed=7)
        r2 = e01.run(fast=True, seed=7)
        assert r1.rows == r2.rows


class TestFastSmoke:
    """Cheap experiments run end to end under pytest (the heavyweight
    ones run in benchmarks/)."""

    def test_e01_shape(self):
        from repro.experiments import e01_invocation_overhead as e01

        result = e01.run(fast=True)
        row = result.find(kernel_us=100.0)
        assert 18 <= row["overhead_us"] <= 42

    def test_e15_shape(self):
        from repro.experiments import e15_consistency_barrier as e15

        result = e15.run(fast=True)
        fenced = result.find(mode="write barrier (3 transactions)")
        assert 4.0 <= fenced["extra_us"] <= 9.0

    def test_e05_zero_kernel_anchor(self):
        from repro.experiments.e05_fig7_latency import zero_kernel_anchor

        anchor = zero_kernel_anchor()
        # §6.2: ~25us on Bluefield vs ~19us via the host (Xeon lands a
        # few us lower here; ordering and rough gap are the invariant)
        assert 20.0 <= anchor["bluefield"] <= 30.0
        assert 12.0 <= anchor["xeon"] <= 22.0
        assert 4.0 <= anchor["bluefield"] - anchor["xeon"] <= 13.0


class TestJsonExport:
    def test_to_dict_roundtrips_through_json(self):
        import json

        result = ExperimentResult("E99", "t", "Fig Z")
        result.add(metric=1.5, label="x")
        result.note("n")
        blob = json.loads(json.dumps(result.to_dict()))
        assert blob["exp_id"] == "E99"
        assert blob["rows"] == [{"metric": 1.5, "label": "x"}]
        assert blob["notes"] == ["n"]


class TestBreakdownStages:
    def test_stage_spans_are_nonnegative_and_sum_to_span(self):
        from repro.experiments.breakdown import STAGES, collect
        from repro.experiments.common import LYNX_BLUEFIELD

        spans = collect(LYNX_BLUEFIELD, samples=30)
        stage_names = [name for name, _, _ in STAGES]
        for name in stage_names:
            assert spans[name] >= 0.0
        accounted = sum(spans[n] for n in stage_names
                        if n != "accel_compute")
        assert accounted <= spans["snic_span_total"] * 1.05
