"""The sweep executor: seed derivation, worker hygiene, and the
serial-vs-parallel bit-identity guarantee (DESIGN.md §4.8)."""

import os
import pickle

import pytest

from repro.errors import ConfigError
from repro.experiments import (
    e04_fig6_throughput_grid as e04,
    e09_fig8a_lenet as e09,
    sweep,
)
from repro.sim import (
    Environment,
    kernel_totals,
    merge_kernel_totals,
    reset_kernel_totals,
)
from repro.sim import trace as trace_mod

# --------------------------------------------------------------------------
# module-level builders (Points must be picklable)
# --------------------------------------------------------------------------


def double_seed(seed, factor=2):
    return seed * factor


def seed_and_kwargs(seed, tag=None):
    return seed, tag


def spin_simulation(seed, events=50):
    """A tiny real simulation, so workers generate kernel totals."""
    env = Environment()

    def ticker(env):
        for _ in range(events):
            yield env.charge(1.0)

    env.process(ticker(env))
    env.run()
    return seed, env.now


class TestDeriveSeed:
    def test_deterministic(self):
        assert (sweep.derive_seed(42, ("E04", 20.0, 1))
                == sweep.derive_seed(42, ("E04", 20.0, 1)))

    def test_within_seed_space(self):
        for key in ("a", ("b", 1), ("c", 2.5, "udp")):
            assert 0 <= sweep.derive_seed(42, key) < sweep.SEED_SPACE

    def test_distinct_across_keys_and_roots(self):
        seeds = {sweep.derive_seed(root, ("E04", n))
                 for root in (1, 2, 42) for n in range(20)}
        assert len(seeds) == 60

    def test_stable_value(self):
        # Pinned: a changed derivation would silently re-seed every
        # experiment point.  blake2s("42|('E04', 1)") -> this value.
        assert sweep.derive_seed(42, ("E04", 1)) == 1981585253


class TestPoint:
    def test_injects_derived_seed(self):
        point = sweep.Point(("k", 1), double_seed, root_seed=7)
        assert point.seed == sweep.derive_seed(7, ("k", 1))
        assert point() == 2 * point.seed

    def test_kwargs_forwarded(self):
        point = sweep.Point("k", seed_and_kwargs, dict(tag="hello"))
        assert point() == (point.seed, "hello")

    def test_explicit_seed_wins(self):
        assert sweep.Point("k", double_seed, seed=5).seed == 5

    def test_seed_kwarg_rejected(self):
        with pytest.raises(ConfigError):
            sweep.Point("k", double_seed, dict(seed=1))

    def test_pickle_round_trip(self):
        point = sweep.Point(("k", 2), double_seed, dict(factor=3),
                            root_seed=9)
        clone = pickle.loads(pickle.dumps(point))
        assert clone.key == point.key
        assert clone.seed == point.seed
        assert clone.kwargs == point.kwargs
        assert clone() == point()


class TestJobsResolution:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        sweep.configure(None)
        assert sweep.active_jobs() == 1

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "3")
        sweep.configure(None)
        assert sweep.active_jobs() == 3

    def test_configure_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "3")
        sweep.configure(2)
        try:
            assert sweep.active_jobs() == 2
        finally:
            sweep.configure(None)

    def test_bad_values_rejected(self):
        with pytest.raises(ConfigError):
            sweep.configure(0)
        with pytest.raises(ConfigError):
            sweep.run_points([], jobs=0)


class TestWorkerHygiene:
    def test_reset_clears_tracers_and_totals(self):
        env = Environment()
        trace_mod.Tracer(env, enabled=True)
        assert trace_mod.enabled_tracers()
        spin_simulation(seed=1)
        assert kernel_totals()["events_processed"] > 0
        sweep._reset_worker_state()
        assert not trace_mod.enabled_tracers()
        assert kernel_totals()["events_processed"] == 0

    def test_merge_kernel_totals(self):
        reset_kernel_totals()
        spin_simulation(seed=2)
        base = kernel_totals()
        snapshot = dict(base, heap_peak=base["heap_peak"] + 7)
        merge_kernel_totals(snapshot)
        merged = kernel_totals()
        assert merged["events_processed"] == 2 * base["events_processed"]
        assert merged["heap_peak"] == base["heap_peak"] + 7
        reset_kernel_totals()


class TestRunPoints:
    def points(self, n=5):
        return [sweep.Point(("spin", i), spin_simulation, dict(events=20 + i))
                for i in range(n)]

    def test_serial_order(self):
        values = sweep.run_points(self.points(), jobs=1)
        assert values == [pt() for pt in self.points()]

    def test_parallel_matches_serial_in_order(self):
        points = self.points()
        assert (sweep.run_points(points, jobs=2)
                == sweep.run_points(points, jobs=1))

    def test_parallel_merges_worker_totals(self):
        reset_kernel_totals()
        sweep.run_points(self.points(), jobs=2)
        # 5 points x (20..24 charges each) plus bookkeeping events all
        # ran in workers; the merged block must reflect them.
        assert kernel_totals()["events_processed"] >= 5 * 20
        reset_kernel_totals()

    def test_oversized_pool_is_clamped(self):
        points = self.points(2)
        assert (sweep.run_points(points, jobs=16)
                == sweep.run_points(points, jobs=1))


class TestGoldenParallelIdentity:
    """`--jobs N` must be invisible in experiment output."""

    def test_e04_rows_identical_across_jobs(self):
        serial = e04.run(fast=True, seed=42, measure=2000.0,
                         warmup=2000.0, jobs=1).to_dict()
        for jobs in (2, 4):
            parallel = e04.run(fast=True, seed=42, measure=2000.0,
                               warmup=2000.0, jobs=jobs).to_dict()
            assert parallel == serial

    def test_e09_rows_identical_across_jobs(self):
        serial = e09.run(fast=True, seed=42, measure_us=3000.0,
                         jobs=1).to_dict()
        parallel = e09.run(fast=True, seed=42, measure_us=3000.0,
                           jobs=2).to_dict()
        assert parallel == serial

    def test_e04_metric_snapshots_identical_across_jobs(self):
        """The merged telemetry snapshot — every instrument, not just
        the result rows — must be invisible to --jobs (DESIGN.md §4.9).

        Only ``sim.kernel.wall_seconds`` differs: it times the host,
        not the model.
        """
        from repro import telemetry

        def metrics(jobs):
            with telemetry.scope() as reg:
                e04.run(fast=True, seed=42, measure=2000.0,
                        warmup=2000.0, jobs=jobs)
                snap = reg.snapshot()
            snap.pop("sim.kernel.wall_seconds", None)
            return snap

        serial = metrics(1)
        assert serial  # a run with no instruments would prove nothing
        assert any(name.startswith("net.client.") for name in serial)
        parallel = metrics(4)
        assert parallel == serial


class TestCliJobsFlag:
    def test_rejects_zero(self, capsys):
        from repro.experiments.__main__ import main
        with pytest.raises(SystemExit):
            main(["--jobs", "0", "E01"])

    def test_env_jobs_do_not_leak_into_other_suites(self):
        # pytest_unconfigure in benchmarks resets; the library default
        # must stay serial regardless of past configure() calls.
        sweep.configure(4)
        sweep.configure(None)
        if not os.environ.get("REPRO_JOBS", "").strip():
            assert sweep.active_jobs() == 1
