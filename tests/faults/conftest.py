"""Every fault test runs in its own telemetry scope: the injector's
``faults.*`` counters are get-or-create by name, so without isolation
one test's increments would bleed into the next test's assertions."""

import pytest

from repro import telemetry


@pytest.fixture(autouse=True)
def _fresh_metrics_scope():
    telemetry.push_scope()
    yield
    telemetry.pop_scope()
