"""Frame execution under faults (DESIGN.md §4.14 x §4.10).

A fault window landing mid-frame must *split or hold* the frame, never
reorder it: an RX-ring stall installs a ``_land`` instance shadow (so
``ring_plain`` fails and deliveries hold in the stall buffer), and a
SmartNIC pause seizes the worker cores (its seizure parks behind any
turbo-held slot and is granted by the coalesced step's ``unseize``
waiter loop).  Either way every simulated observable must be
bit-identical to the scalar oracle — at both scheduler backends — with
only the kernel's event counters allowed to differ (fewer events is
the point of frame execution).
"""

import os

import pytest

from repro import telemetry
from repro.apps.base import SpinApp
from repro.experiments.common import LYNX_BLUEFIELD, deploy
from repro.faults import FaultInjector, FaultSchedule, RxRingStall, SnicPause
from repro.net import ClosedLoopGenerator
from repro.net.packet import UDP
from repro.sim import configure_backend

SERVER_IP = "10.0.0.100"


def _run(backend, frame, specs):
    """One faulted deployment at a fixed seed; returns (row, events)."""
    os.environ["REPRO_FRAME_EXEC"] = "1" if frame else "0"
    configure_backend(backend)
    try:
        with telemetry.scope():
            dep = deploy(LYNX_BLUEFIELD, app=SpinApp(20.0), n_mqueues=2,
                         proto=UDP, seed=42)
            injector = FaultInjector(FaultSchedule(specs())).arm(dep)
            client = dep.tb.client("10.0.9.1")
            gen = ClosedLoopGenerator(
                dep.env, client, dep.address, 8,
                payload_fn=lambda i: b"ping", proto=UDP, timeout=1500.0)
            dep.env.run(until=12000)
            row = {
                "completed": gen.completed,
                "errors": gen.errors,
                "timeouts": gen.timeouts,
                "latency_count": client.latency.count,
                "p50": client.latency.p50(),
                "p99": client.latency.p99(),
                "served": dep.server.responses.count,
                "requests_completed": dep.env.requests_completed,
                "injected": injector.counts("injected"),
                "dropped": injector.counts("dropped"),
                "recovered": injector.counts("recovered"),
            }
            return row, dep.env.events_processed
    finally:
        configure_backend(None)
        os.environ.pop("REPRO_FRAME_EXEC", None)


def _four_way(specs):
    """Scalar-heap oracle vs frame/wheel variants; rows must agree."""
    ref, ref_events = _run("heap", False, specs)
    for backend, frame in (("heap", True), ("wheel", False),
                           ("wheel", True)):
        row, events = _run(backend, frame, specs)
        assert row == ref, (backend, frame)
        if frame:
            # The frames actually engaged: fewer scheduler events for
            # the same simulated history.
            assert events < ref_events, (backend, frame)
    return ref


class TestRxRingStallMidFrame:
    def test_rows_identical_and_frames_held(self):
        row = _four_way(lambda: [
            RxRingStall(SERVER_IP, start=3000, duration=1500,
                        buffer_limit=64),
            RxRingStall(SERVER_IP, start=7000, duration=800,
                        buffer_limit=64),
        ])
        # Both windows fired and released their held frames.
        assert row["injected"].get("rx_stall") == 2
        assert row["recovered"].get("rx_stall", 0) > 0
        assert row["completed"] > 0

    def test_overflowing_stall_drops_like_scalar(self):
        row = _four_way(lambda: [
            RxRingStall(SERVER_IP, start=3000, duration=2000,
                        buffer_limit=2),
        ])
        assert row["dropped"].get("rx_stall", 0) > 0


class TestSnicPauseMidFrame:
    def test_rows_identical_across_pause(self):
        row = _four_way(lambda: [
            SnicPause(start=3000, duration=1200),
            SnicPause(start=8000, duration=600),
        ])
        assert row["injected"].get("snic_pause") == 2
        assert row["recovered"].get("snic_pause") == 2
        assert row["completed"] > 0

    def test_pause_and_stall_interleaved(self):
        # Both fault families active at once: the pool seizure and the
        # _land shadow each force their own frame fallbacks without
        # perturbing the other's bit-identity.
        row = _four_way(lambda: [
            SnicPause(start=2500, duration=1000),
            RxRingStall(SERVER_IP, start=3000, duration=1500,
                        buffer_limit=64),
        ])
        assert row["injected"].get("snic_pause") == 1
        assert row["injected"].get("rx_stall") == 1
        assert row["completed"] > 0
