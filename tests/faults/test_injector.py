"""Fault injector mechanics: wire hooks, windows, determinism, and the
zero-overhead guarantee when no schedule is armed."""

import pytest

from repro import telemetry
from repro.config import XEON_E5_2620, XEON_VMA
from repro.errors import FaultError
from repro.faults import (
    FaultInjector,
    FaultSchedule,
    LinkCorruption,
    LinkLoss,
    RxRingStall,
    SnicPause,
    SnicRestart,
)
from repro.hw.cpu import CorePool
from repro.hw.nic import Nic
from repro.net import Address, ClosedLoopGenerator, Client, Network
from repro.net.packet import UDP
from repro.net.stack import NetworkStack
from repro.sim import Environment, RngRegistry

SERVER_IP = "10.0.0.1"
PORT = 7777


class _EchoServer:
    """Minimal UDP echo endpoint on a NIC."""

    def __init__(self, env, network, ip=SERVER_IP, port=PORT, delay=5.0):
        self.nic = Nic(env, network, ip)
        self.delay = delay
        self.env = env
        self.pool = CorePool(env, XEON_E5_2620, count=4)
        self.stack = NetworkStack(env, self.pool, XEON_VMA)
        self.stack.listen(port)
        env.process(self._loop())

    def _loop(self):
        while True:
            msg = yield self.nic.recv()
            if self.stack.handle_control(msg, self.nic):
                continue
            yield self.env.timeout(self.delay)
            yield from self.nic.send(
                msg.reply(msg.payload, created_at=self.env.now))


def _rig(seed=7):
    env = Environment()
    network = Network(env)
    rng = RngRegistry(seed)
    server = _EchoServer(env, network)
    client = Client(env, network, "10.0.1.1", rng=rng)
    return env, network, rng, server, client


def _drive(env, client, concurrency=2, timeout=None, until=4000):
    gen = ClosedLoopGenerator(env, client, Address(SERVER_IP, PORT),
                              concurrency=concurrency,
                              payload_fn=lambda i: b"ping", proto=UDP,
                              timeout=timeout)
    env.run(until=until)
    return gen


class TestLossWindow:
    def test_certain_loss_drops_everything_in_window(self):
        env, network, rng, server, client = _rig()
        injector = FaultInjector(FaultSchedule([
            LinkLoss(SERVER_IP, start=1000, duration=1000, probability=1.0),
        ])).arm(env=env, network=network, rng=rng)
        gen = _drive(env, client, timeout=100, until=4000)
        dropped = injector.counts("injected")["link_loss"]
        assert dropped > 0
        assert network.wire_channel(SERVER_IP).dropped == dropped
        assert gen.timeouts > 0          # the window starved the client
        assert gen.completed > 0         # before and after it, traffic flows

    def test_corruption_counted_separately_from_loss(self):
        env, network, rng, server, client = _rig()
        injector = FaultInjector(FaultSchedule([
            LinkLoss(SERVER_IP, start=500, duration=800, probability=1.0),
            LinkCorruption(SERVER_IP, start=2000, duration=800,
                           probability=1.0),
        ])).arm(env=env, network=network, rng=rng)
        _drive(env, client, timeout=100, until=4000)
        counts = injector.counts("injected")
        assert counts["link_loss"] > 0
        assert counts["corruption"] > 0

    def test_hook_removed_after_last_window(self):
        env, network, rng, server, client = _rig()
        FaultInjector(FaultSchedule([
            LinkLoss(SERVER_IP, start=100, duration=200, probability=0.5),
        ])).arm(env=env, network=network, rng=rng)
        channel = network.wire_channel(SERVER_IP)
        _drive(env, client, until=2000)
        # The per-instance _land shadow is gone: the class fast path is
        # back and later traffic pays nothing for the faults layer.
        assert "_land" not in channel.__dict__


class TestRxStall:
    def test_stall_delays_then_recovers_without_loss(self):
        env, network, rng, server, client = _rig()
        injector = FaultInjector(FaultSchedule([
            RxRingStall(SERVER_IP, start=1000, duration=800),
        ])).arm(env=env, network=network, rng=rng)
        env.run(until=1000)
        gen = ClosedLoopGenerator(env, client, Address(SERVER_IP, PORT),
                                  concurrency=2,
                                  payload_fn=lambda i: b"ping", proto=UDP)
        env.run(until=1700)
        stalled = gen.completed        # requests are parked in the hold
        env.run(until=4000)
        assert stalled == 0
        assert gen.completed > 0       # burst lands once the window ends
        assert injector.counts("recovered")["rx_stall"] > 0
        assert network.wire_channel(SERVER_IP).dropped == 0

    def test_stall_overflow_drops_beyond_buffer_limit(self):
        env, network, rng, server, client = _rig()
        injector = FaultInjector(FaultSchedule([
            RxRingStall(SERVER_IP, start=500, duration=1000, buffer_limit=1),
        ])).arm(env=env, network=network, rng=rng)
        _drive(env, client, concurrency=4, timeout=200, until=3000)
        assert injector.counts("dropped")["rx_stall"] > 0
        assert injector.counts("recovered")["rx_stall"] == 1


class TestDeterminism:
    def _sample(self):
        with telemetry.scope():
            return self._run_once()

    def _run_once(self):
        env, network, rng, server, client = _rig(seed=11)
        injector = FaultInjector(FaultSchedule([
            LinkLoss(SERVER_IP, start=500, duration=2000, probability=0.5),
        ])).arm(env=env, network=network, rng=rng)
        gen = _drive(env, client, timeout=150, until=4000)
        return (env._eid, tuple(client.latency._samples), gen.completed,
                gen.timeouts, injector.counts("injected"))

    def test_same_seed_same_fault_pattern(self):
        assert self._sample() == self._sample()


class TestUnarmedIsFree:
    def _workload(self, with_injector):
        env, network, rng, server, client = _rig(seed=3)
        if with_injector:
            FaultInjector(FaultSchedule()).arm(env=env, network=network,
                                               rng=rng)
        gen = _drive(env, client, timeout=300, until=3000)
        return (env._eid, tuple(client.latency._samples), gen.completed,
                network.wire_channel(SERVER_IP).delivered)

    def test_armed_empty_schedule_is_bit_identical_to_none(self):
        # The acceptance bar for the whole layer: present but unarmed
        # (or armed with zero windows) consumes no schedule slots and
        # perturbs nothing.
        assert self._workload(False) == self._workload(True)

    def test_no_instance_shadow_without_wire_faults(self):
        env, network, rng, server, client = _rig()
        FaultInjector(FaultSchedule([
            SnicPause(start=100, duration=50),
        ])).arm(env=env, network=network, rng=rng, server=server)
        assert "_land" not in network.wire_channel(SERVER_IP).__dict__


class TestSnicPause:
    def test_pause_freezes_all_worker_cores(self):
        from repro.apps.base import SpinApp
        from repro.experiments.common import LYNX_BLUEFIELD, deploy

        dep = deploy(LYNX_BLUEFIELD, app=SpinApp(20.0), n_mqueues=2,
                     proto=UDP)
        FaultInjector(FaultSchedule([
            SnicPause(start=3000, duration=2000),
        ])).arm(dep)
        client = dep.tb.client("10.0.9.1")
        gen = ClosedLoopGenerator(dep.env, client, dep.address,
                                  concurrency=2,
                                  payload_fn=lambda i: b"ping", proto=UDP)
        dep.env.run(until=3100)
        before = gen.completed
        assert before > 0
        dep.env.run(until=4900)
        # Dispatcher and egress forwarder are both seized: at most the
        # already-in-flight responses land during the window.
        assert gen.completed <= before + 4
        dep.env.run(until=9000)
        assert gen.completed > before + 10   # service resumed

    def test_snic_restart_flushes_rx_ring_backlog(self):
        from repro.apps.base import SpinApp
        from repro.experiments.common import LYNX_BLUEFIELD, deploy
        from repro.net import OpenLoopGenerator

        dep = deploy(LYNX_BLUEFIELD, app=SpinApp(50.0), n_mqueues=1,
                     proto=UDP)
        injector = FaultInjector(FaultSchedule([
            SnicRestart(start=4000, duration=1000),
        ])).arm(dep)
        client = dep.tb.client("10.0.9.1")
        # Overdrive the server so the NIC RX ring holds a backlog at the
        # instant the restart fires.
        OpenLoopGenerator(dep.env, client, dep.address, rate_per_us=0.5,
                          payload_fn=lambda i: b"ping", proto=UDP)
        dep.env.run(until=8000)
        counts = injector.counts("dropped")
        assert counts.get("snic_restart", 0) > 0
        assert injector.counts("injected")["snic_restart"] == 1
        assert injector.counts("recovered")["snic_restart"] == 1


class TestArming:
    def test_arm_twice_rejected(self):
        env = Environment()
        injector = FaultInjector(FaultSchedule()).arm(env=env)
        with pytest.raises(FaultError, match="already armed"):
            injector.arm(env=env)

    def test_wire_fault_without_network_rejected(self):
        with pytest.raises(FaultError, match="network"):
            FaultInjector(FaultSchedule([
                LinkLoss("10.0.0.1", 0, 1, probability=0.5),
            ])).arm(env=Environment())

    def test_accel_fault_without_target_rejected(self):
        from repro.faults import AcceleratorOutage

        with pytest.raises(FaultError, match="GpuService or a gpu"):
            FaultInjector(FaultSchedule([
                AcceleratorOutage(0, 1),
            ])).arm(env=Environment())

    def test_needs_environment(self):
        with pytest.raises(FaultError, match="environment"):
            FaultInjector(FaultSchedule()).arm()

    def test_disarm_restores_channel_fast_path(self):
        env, network, rng, server, client = _rig()
        injector = FaultInjector(FaultSchedule([
            LinkLoss(SERVER_IP, start=100, duration=10000, probability=1.0),
        ])).arm(env=env, network=network, rng=rng)
        env.run(until=200)           # window is open, hook installed
        channel = network.wire_channel(SERVER_IP)
        assert "_land" in channel.__dict__
        injector.disarm()
        assert "_land" not in channel.__dict__
        gen = _drive(env, client, until=2000)
        assert gen.completed > 0     # pending windows are inert
