"""End-to-end failure recovery: accelerator outages, shedding, retries.

The recovery contract under test (DESIGN.md §4.10): when the
accelerator goes dark, Lynx keeps the data plane responsive by shedding
requests with ``ERR_UNAVAILABLE`` error responses; clients retry with
backoff and recover once the kernel restarts; a crash restart drains
the mqueue rings so the revived kernel starts from clean state."""

import pytest

from repro import telemetry
from repro.apps.base import SpinApp
from repro.errors import AcceleratorError
from repro.experiments.common import HOST_CENTRIC, LYNX_BLUEFIELD, deploy
from repro.faults import AcceleratorOutage, FaultInjector, FaultSchedule
from repro.lynx.mqueue import MQueue, MQueueEntry
from repro.net import ClosedLoopGenerator
from repro.net.packet import UDP
from repro.sim import Environment


def _deploy(design=LYNX_BLUEFIELD, kernel_us=20.0, n_mqueues=2):
    return deploy(design, app=SpinApp(kernel_us), n_mqueues=n_mqueues,
                  proto=UDP)


def _gen(dep, concurrency=2, timeout=None, retries=0, retry_backoff=None):
    client = dep.tb.client("10.0.9.1")
    return client, ClosedLoopGenerator(
        dep.env, client, dep.address, concurrency,
        payload_fn=lambda i: b"ping", proto=UDP, timeout=timeout,
        retries=retries, retry_backoff=retry_backoff)


class TestLynxCrashRecovery:
    def test_dark_accelerator_sheds_then_recovers(self):
        dep = _deploy()
        injector = FaultInjector(FaultSchedule([
            AcceleratorOutage(start=3000, duration=2000, mode="crash"),
        ])).arm(dep)
        client, gen = _gen(dep, timeout=1000)
        env = dep.env
        env.run(until=3000)
        before = gen.completed
        assert before > 0
        env.run(until=4900)
        # The server stayed responsive: requests were answered with
        # error responses (not parked, not silently dropped).
        assert dep.server.shed > 0
        assert gen.errors > 0
        assert gen.completed <= before + 4
        env.run(until=9000)
        assert gen.completed > before + 10          # kernel restarted
        assert injector.counts("recovered")["accel_restart"] == 1
        # Threadblocks were respawned and are live again.
        assert any(tb.is_alive for tb in dep.service.threadblocks)

    def test_error_responses_resolve_waiters_without_polluting_latency(self):
        dep = _deploy()
        FaultInjector(FaultSchedule([
            AcceleratorOutage(start=3000, duration=2000, mode="crash"),
        ])).arm(dep)
        client, gen = _gen(dep, timeout=1000)
        dep.env.run(until=9000)
        gen.stop()
        dep.env.run(until=11000)        # quiesce the in-flight requests
        # Shed responses resolved the client's waiters (no leak) and
        # goodput accounting excludes them.
        assert client._waiters == {}
        assert client.latency.count == client.responses.count == \
            gen.completed

    def test_retries_with_backoff_recover_shed_requests(self):
        with telemetry.scope() as reg:
            dep = _deploy()
            FaultInjector(FaultSchedule([
                AcceleratorOutage(start=3000, duration=1500, mode="crash"),
            ])).arm(dep)
            client, gen = _gen(dep, timeout=1500, retries=3,
                               retry_backoff=400.0)
            dep.env.run(until=12000)
            recovered = reg.get("faults.recovered.client_retry")
        assert client.retries > 0
        assert gen.errors == 0          # every shed request was retried
        assert recovered is not None and recovered.value > 0

    def test_hang_mode_restarts_without_draining(self):
        dep = _deploy()
        injector = FaultInjector(FaultSchedule([
            AcceleratorOutage(start=3000, duration=1500, mode="hang"),
        ])).arm(dep)
        client, gen = _gen(dep, timeout=1000)
        dep.env.run(until=9000)
        assert "accel_restart" not in injector.counts("dropped")
        assert injector.counts("recovered")["accel_restart"] == 1
        assert gen.completed > 0
        assert any(tb.is_alive for tb in dep.service.threadblocks)

    def test_two_outages_back_to_back(self):
        dep = _deploy()
        injector = FaultInjector(FaultSchedule([
            AcceleratorOutage(start=2000, duration=1000, mode="crash"),
            AcceleratorOutage(start=5000, duration=1000, mode="crash"),
        ])).arm(dep)
        client, gen = _gen(dep, timeout=800)
        dep.env.run(until=3500)
        first = gen.completed
        dep.env.run(until=10000)
        assert injector.counts("recovered")["accel_restart"] == 2
        assert gen.completed > first    # survived both restarts


class TestHostCentricOutage:
    def test_outage_queues_instead_of_shedding(self):
        dep = _deploy(design=HOST_CENTRIC)
        FaultInjector(FaultSchedule([
            AcceleratorOutage(start=3000, duration=2000, mode="crash"),
        ])).arm(dep)
        client, gen = _gen(dep, timeout=None)
        env = dep.env
        env.run(until=3100)
        before = gen.completed
        assert before > 0
        env.run(until=4900)
        # No shed path on the baseline: requests wait for SM slots.
        assert gen.errors == 0
        assert gen.completed <= before + 4
        env.run(until=9000)
        assert gen.completed > before + 10


class TestServiceRestart:
    def test_restart_without_respawn_hook_raises(self):
        from repro.lynx.runtime import GpuService

        service = GpuService(gpu=None, manager=None, mqueues=[],
                             contexts=[], threadblocks=[])
        with pytest.raises(AcceleratorError, match="respawn"):
            service.restart()

    def test_interrupt_returns_killed_count_and_purges_ring_waiters(self):
        dep = _deploy(n_mqueues=2)
        service = dep.service
        alive = sum(1 for tb in service.threadblocks if tb.is_alive)
        assert alive > 0
        killed = service.interrupt("test")
        assert killed == alive
        dep.env.run(until=dep.env.now + 1)   # let the kills process
        assert not any(tb.is_alive for tb in service.threadblocks)
        for mq in service.mqueues:
            assert not mq.rx_ring._getters and not mq.rx_ring._putters

    def test_mqueue_drain_counts_both_rings(self):
        env = Environment()
        mq = MQueue(env, memory=None, entries=4)
        assert mq.claim_rx_slot()
        mq.complete_rx(MQueueEntry(b"req", 3))
        mq.push_tx(MQueueEntry(b"resp", 4))
        dropped_before = mq.dropped
        assert mq.drain() == 2
        assert mq.dropped == dropped_before + 2
        assert len(mq.rx_ring) == 0 and len(mq.tx_ring) == 0
        # The drained RX entry released its credit: a new claim succeeds.
        assert mq.claim_rx_slot()
