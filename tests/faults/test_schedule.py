"""Fault-schedule grammar: validation and the dict round trip."""

import pytest

from repro.errors import FaultError
from repro.faults import (
    AcceleratorOutage,
    FaultSchedule,
    LinkCorruption,
    LinkLoss,
    RxRingStall,
    SnicPause,
    SnicRestart,
)


class TestSpecValidation:
    def test_negative_start_rejected(self):
        with pytest.raises(FaultError, match="start"):
            SnicPause(start=-1.0, duration=10.0)

    def test_zero_duration_rejected(self):
        with pytest.raises(FaultError, match="duration"):
            SnicPause(start=0.0, duration=0.0)

    def test_non_numeric_window_rejected(self):
        with pytest.raises(FaultError):
            SnicPause(start="soon", duration=10.0)

    def test_loss_needs_probability_in_unit_interval(self):
        for bad in (0.0, -0.5, 1.5, None, "p"):
            with pytest.raises(FaultError, match="probability"):
                LinkLoss("10.0.0.1", start=0, duration=10, probability=bad)
        # 1.0 is inclusive: "drop everything" is a valid burst
        LinkLoss("10.0.0.1", start=0, duration=10, probability=1.0)

    def test_wire_fault_needs_ip(self):
        with pytest.raises(FaultError, match="ip"):
            LinkLoss(None, start=0, duration=10, probability=0.5)

    def test_stall_buffer_limit_validated(self):
        with pytest.raises(FaultError, match="buffer_limit"):
            RxRingStall("10.0.0.1", start=0, duration=10, buffer_limit=-1)

    def test_outage_mode_validated(self):
        with pytest.raises(FaultError, match="mode"):
            AcceleratorOutage(start=0, duration=10, mode="flaky")

    def test_outage_kind_tracks_mode(self):
        assert AcceleratorOutage(0, 10, mode="crash").kind == "accel_crash"
        assert AcceleratorOutage(0, 10, mode="hang").kind == "accel_hang"

    def test_window_end(self):
        spec = SnicPause(start=100.0, duration=25.0)
        assert spec.end == 125.0


class TestSchedule:
    def _schedule(self):
        return FaultSchedule([
            LinkLoss("10.0.0.100", start=1000, duration=500,
                     probability=0.25),
            LinkCorruption("10.0.0.100", start=2000, duration=100,
                           probability=0.1),
            RxRingStall("10.0.0.100", start=3000, duration=200,
                        buffer_limit=8),
            SnicPause(start=4000, duration=300),
            SnicRestart(start=5000, duration=300),
            AcceleratorOutage(start=6000, duration=1000, mode="hang"),
        ])

    def test_dict_round_trip(self):
        schedule = self._schedule()
        rebuilt = FaultSchedule.from_dicts(schedule.to_dicts())
        assert rebuilt.to_dicts() == schedule.to_dicts()
        assert len(rebuilt) == len(schedule)

    def test_horizon(self):
        assert self._schedule().horizon == 7000.0
        assert FaultSchedule().horizon == 0.0

    def test_empty_schedule_is_valid_but_falsy(self):
        schedule = FaultSchedule()
        assert not schedule
        assert len(schedule) == 0
        assert self._schedule()

    def test_add_chains_and_rejects_non_specs(self):
        schedule = FaultSchedule().add(SnicPause(0, 1)).add(SnicPause(2, 1))
        assert len(schedule) == 2
        with pytest.raises(FaultError, match="FaultSpec"):
            schedule.add({"fault": "snic_pause"})

    def test_unknown_kind_rejected(self):
        with pytest.raises(FaultError, match="unknown fault kind"):
            FaultSchedule.from_dicts([{"fault": "gamma_ray", "at": 0,
                                       "for": 1}])

    def test_unknown_field_rejected(self):
        with pytest.raises(FaultError, match="unknown schedule fields"):
            FaultSchedule.from_dicts([{"fault": "snic_pause", "at": 0,
                                       "for": 1, "severity": "high"}])

    def test_non_dict_entry_rejected(self):
        with pytest.raises(FaultError, match="dicts"):
            FaultSchedule.from_dicts(["snic_pause"])

    def test_bad_window_in_dict_grammar_rejected(self):
        with pytest.raises(FaultError):
            FaultSchedule.from_dicts([{"fault": "link_loss",
                                       "ip": "10.0.0.1", "at": 0,
                                       "for": -5, "probability": 0.5}])
