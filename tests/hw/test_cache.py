"""LLC interference model (§3.2 noisy neighbour mechanism)."""

import numpy as np
import pytest

from repro.config import CacheProfile, DEFAULT_CACHE
from repro.errors import ConfigError
from repro.hw.cache import LLCModel, lognormal_p99_over_mean
from repro.sim import Environment, RngRegistry


@pytest.fixture
def llc():
    env = Environment()
    rng = RngRegistry(1).stream("llc")
    return LLCModel(env, size_bytes=15 * 1024 * 1024, profile=DEFAULT_CACHE,
                    rng=rng)


class TestOccupancy:
    def test_no_pressure_when_fits(self, llc):
        llc.occupy(10 * 1024 * 1024)
        assert llc.pressure == 0.0

    def test_pressure_grows_past_capacity(self, llc):
        llc.occupy(int(22.5 * 1024 * 1024))
        assert llc.pressure == pytest.approx(0.5)

    def test_pressure_capped_at_one(self, llc):
        llc.occupy(200 * 1024 * 1024)
        assert llc.pressure == 1.0

    def test_release_restores(self, llc):
        token = llc.occupy(100 * 1024 * 1024)
        assert llc.pressure > 0
        llc.release(token)
        assert llc.pressure == 0.0

    def test_size_must_be_positive(self):
        env = Environment()
        with pytest.raises(ConfigError):
            LLCModel(env, 0, DEFAULT_CACHE, RngRegistry(0).stream("x"))


class TestPenalty:
    def test_unit_penalty_without_contention(self, llc):
        assert llc.penalty(1.0) == 1.0

    def test_zero_intensity_never_penalized(self, llc):
        llc.occupy(100 * 1024 * 1024)
        assert llc.penalty(0.0) == 1.0

    def test_intensity_must_be_fraction(self, llc):
        with pytest.raises(ConfigError):
            llc.penalty(1.5)

    def test_mean_penalty_matches_profile(self, llc):
        llc.occupy(30 * 1024 * 1024)  # pressure == 1
        draws = [llc.penalty(1.0) for _ in range(4000)]
        expected = llc.expected_penalty(1.0)
        assert np.mean(draws) == pytest.approx(expected, rel=0.15)

    def test_penalty_has_heavy_tail(self, llc):
        llc.occupy(30 * 1024 * 1024)
        draws = np.array([llc.penalty(1.0) for _ in range(4000)])
        assert np.percentile(draws, 99) > 4 * np.mean(draws)

    def test_aggressor_penalty_is_mild(self, llc):
        llc.occupy(30 * 1024 * 1024)
        assert llc.aggressor_penalty() == pytest.approx(
            DEFAULT_CACHE.aggressor_slowdown)

    def test_aggressor_unaffected_without_pressure(self, llc):
        assert llc.aggressor_penalty() == 1.0


class TestCalibrationHelper:
    def test_p99_over_mean_increases_then_decreases(self):
        # The unit-mean lognormal tail ratio peaks near sigma = z99.
        r1 = lognormal_p99_over_mean(0.5)
        r2 = lognormal_p99_over_mean(2.3)
        assert r2 > r1 > 1.0
