"""CPU core / pool / socket models."""

import pytest

from repro.config import BLUEFIELD_ARM, DEFAULT_CACHE, XEON_E5_2620
from repro.errors import ConfigError
from repro.hw.cpu import Core, CorePool, CpuSocket
from repro.sim import Environment, RngRegistry


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def rng():
    return RngRegistry(0).stream("test")


class TestCore:
    def test_calibrated_work_charges_exact_duration(self, env):
        core = Core(env, XEON_E5_2620, 0)

        def proc(env):
            yield from core.run_calibrated(12.5)
            return env.now

        p = env.process(proc(env))
        env.run()
        assert p.value == 12.5

    def test_compute_scales_with_speed_factor(self, env):
        arm = Core(env, BLUEFIELD_ARM, 0)

        def proc(env):
            yield from arm.run_compute(33.0)
            return env.now

        p = env.process(proc(env))
        env.run()
        assert p.value == pytest.approx(33.0 / BLUEFIELD_ARM.speed_factor)

    def test_core_serializes(self, env):
        core = Core(env, XEON_E5_2620, 0)
        ends = []

        def proc(env):
            yield from core.run_calibrated(10)
            ends.append(env.now)

        env.process(proc(env))
        env.process(proc(env))
        env.run()
        assert ends == [10, 20]

    def test_negative_duration_rejected(self, env):
        core = Core(env, XEON_E5_2620, 0)
        env.process(core.run_calibrated(-1))
        with pytest.raises(ConfigError):
            env.run()


class TestCorePool:
    def test_pool_parallelism(self, env):
        pool = CorePool(env, XEON_E5_2620, count=3)
        ends = []

        def proc(env):
            yield from pool.run_calibrated(10)
            ends.append(env.now)

        for _ in range(6):
            env.process(proc(env))
        env.run()
        assert ends == [10, 10, 10, 20, 20, 20]

    def test_pool_requires_core(self, env):
        with pytest.raises(ConfigError):
            CorePool(env, XEON_E5_2620, count=0)

    def test_priority_orders_contended_work(self, env):
        pool = CorePool(env, XEON_E5_2620, count=1)
        order = []

        def work(env, name, priority):
            yield from pool.run_calibrated(5, priority=priority)
            order.append(name)

        def spawner(env):
            env.process(work(env, "hog", 0))
            yield env.timeout(1)
            env.process(work(env, "ingress", 0))
            env.process(work(env, "egress", -1))

        env.process(spawner(env))
        env.run()
        assert order == ["hog", "egress", "ingress"]

    def test_pool_defaults_apply_cache_pressure(self, env, rng):
        from repro.hw.cache import LLCModel

        llc = LLCModel(env, 100, DEFAULT_CACHE, rng)
        llc.occupy(10000)  # an external aggressor overflowing the LLC
        pool = CorePool(env, XEON_E5_2620, count=1, llc=llc)
        pool.default_memory_intensity = 1.0
        pool.default_working_set = 50

        def proc(env):
            yield from pool.run_calibrated(10)
            return env.now

        p = env.process(proc(env))
        env.run()
        assert p.value > 10  # slowed by contention


class TestCpuSocket:
    def test_socket_has_profile_core_count(self, env, rng):
        socket = CpuSocket(env, XEON_E5_2620, DEFAULT_CACHE, rng)
        assert len(socket.cores) == 6

    def test_cores_share_llc(self, env, rng):
        socket = CpuSocket(env, XEON_E5_2620, DEFAULT_CACHE, rng)
        assert all(core.llc is socket.llc for core in socket.cores)

    def test_pool_factory_shares_llc(self, env, rng):
        socket = CpuSocket(env, XEON_E5_2620, DEFAULT_CACHE, rng)
        pool = socket.pool(count=2)
        assert pool.llc is socket.llc
        assert pool.count == 2
