"""GPU device model: driver lock, SM slots, persistent kernels."""

import pytest

from repro.config import K40M, K80, XEON_E5_2620, GpuProfile
from repro.errors import AcceleratorError
from repro.hw.cpu import CorePool
from repro.hw.gpu import GPU, CudaDriver
from repro.sim import Environment


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def pool(env):
    return CorePool(env, XEON_E5_2620, count=1)


@pytest.fixture
def gpu(env):
    return GPU(env, K40M, CudaDriver(env))


class TestKernelLaunch:
    def test_launch_includes_driver_and_device_latency(self, env, pool, gpu):
        def proc(env):
            yield from gpu.launch_kernel(pool, 100.0)
            return env.now

        p = env.process(proc(env))
        env.run()
        expected = (K40M.driver_op_cost + K40M.launch_latency + 100.0
                    + K40M.sync_latency)
        assert p.value == pytest.approx(expected)

    def test_driver_lock_serializes_cpu_parts(self, env, gpu):
        pool = CorePool(env, XEON_E5_2620, count=2)
        done = []

        def proc(env):
            yield from gpu.launch_kernel(pool, 50.0)
            done.append(env.now)

        env.process(proc(env))
        env.process(proc(env))
        env.run()
        # Kernels overlap on the GPU, but the two driver calls serialize.
        assert done[1] - done[0] >= K40M.driver_op_cost * 0.99

    def test_k80_runs_slower(self, env, pool):
        gpu = GPU(env, K80, CudaDriver(env))
        assert gpu.scaled(278.0) == pytest.approx(303.0, rel=0.01)

    def test_child_launch_cheaper_than_host_launch(self, env, pool, gpu):
        def child(env):
            yield from gpu.child_launch(10.0)
            return env.now

        p = env.process(child(env))
        env.run()
        assert p.value == pytest.approx(K40M.device_launch_latency + 10.0)


class TestMemcpy:
    def test_memcpy_has_fixed_cpu_cost_plus_dma(self, env, pool, gpu):
        def proc(env):
            yield from gpu.memcpy_async(pool, 4)
            return env.now

        p = env.process(proc(env))
        env.run()
        assert p.value >= K40M.memcpy_fixed
        assert p.value < K40M.memcpy_fixed + 2.0  # tiny payload

    def test_large_copy_pays_bandwidth(self, env, pool, gpu):
        def proc(env, nbytes):
            yield from gpu.dma_transfer(nbytes)
            return env.now

        p = env.process(proc(env, 10 * 1024 * 1024))
        env.run()
        assert p.value >= 10 * 1024 * 1024 / K40M.copy_bandwidth


class TestSmSlots:
    def test_blocks_bounded_by_max_threadblocks(self, env):
        profile = GpuProfile(name="tiny", max_threadblocks=2)
        gpu = GPU(env, profile, CudaDriver(env))
        with pytest.raises(AcceleratorError):
            gpu.persistent_kernel(3, lambda tb: iter(()))

    def test_zero_threadblock_kernel_rejected(self, env, pool, gpu):
        def proc(env):
            yield from gpu.launch_kernel(pool, 1.0, threadblocks=0)

        env.process(proc(env))
        with pytest.raises(AcceleratorError):
            env.run()

    def test_persistent_blocks_occupy_slots(self, env, gpu):
        def body(tb):
            yield env.timeout(1000)

        gpu.persistent_kernel(10, body)
        env.run(until=5)
        assert gpu.sm_slots.in_use == 10

    def test_kernels_queue_when_sms_full(self, env, pool):
        profile = GpuProfile(name="tiny", max_threadblocks=1,
                             driver_op_cost=0.0, launch_latency=0.0,
                             sync_latency=0.0)
        gpu = GPU(env, profile, CudaDriver(env))
        ends = []

        def proc(env):
            yield from gpu.launch_kernel(pool, 10.0)
            ends.append(env.now)

        env.process(proc(env))
        env.process(proc(env))
        env.run()
        assert ends == [10.0, 20.0]


class TestPersistentKernel:
    def test_bodies_receive_their_index(self, env, gpu):
        seen = []

        def body(tb):
            seen.append(tb)
            yield env.timeout(1)

        gpu.persistent_kernel(4, body)
        env.run()
        assert sorted(seen) == [0, 1, 2, 3]
