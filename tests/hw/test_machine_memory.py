"""Machine composition extras and memory regions."""

import pytest

from repro import Testbed
from repro.errors import ConfigError
from repro.hw.memory import MemoryRegion
from repro.sim import Environment


class TestMemoryRegion:
    def test_local_access_charges_latency(self):
        env = Environment()
        region = MemoryRegion(env, "m", access_latency=0.35)

        def proc(env):
            yield from region.local_access()
            return env.now

        p = env.process(proc(env))
        env.run()
        assert p.value == 0.35

    def test_negative_latency_rejected(self):
        with pytest.raises(ConfigError):
            MemoryRegion(Environment(), "m", access_latency=-1)

    def test_bar_exposure_flag(self):
        env = Environment()
        hidden = MemoryRegion(env, "h", exposed_on_pcie=False)
        assert not hidden.exposed_on_pcie
        assert "not BAR-exposed" in repr(hidden)


class TestAddNic:
    def test_second_nic_gets_own_ip_and_link(self):
        tb = Testbed()
        host = tb.machine("10.0.0.1")
        nic2 = host.add_nic("10.0.0.11")
        assert nic2.ip == "10.0.0.11"
        assert tb.network.endpoint("10.0.0.11") is nic2
        assert "nic1" in host.fabric.devices()

    def test_two_extra_nics(self):
        tb = Testbed()
        host = tb.machine("10.0.0.1")
        host.add_nic("10.0.0.11")
        host.add_nic("10.0.0.12")
        assert "nic2" in host.fabric.devices()

    def test_servers_on_separate_nics_coexist(self):
        """The Fig 9 config-B shape: Lynx and memcached on one host."""
        from repro.apps.base import EchoApp
        from repro.apps.memcached import MemcachedServer, encode_get, encode_set
        from repro.config import XEON_VMA
        from repro.net import Address
        from repro.net.packet import UDP

        tb = Testbed()
        env = tb.env
        host = tb.machine("10.0.0.1")
        gpu = host.add_gpu()
        runtime, server = tb.lynx_on_host(host, cores=1)
        env.process(runtime.start_gpu_service(gpu, EchoApp(), port=7777))
        mc_nic = host.add_nic("10.0.0.11")
        mc = MemcachedServer(env, mc_nic, host.pool(count=2, name="mc"),
                             XEON_VMA)
        env.run(until=200)
        client = tb.client("10.0.1.1")
        results = {}

        def drive(env):
            r = yield from client.request(b"hi", Address("10.0.0.1", 7777),
                                          proto=UDP)
            results["echo"] = bytes(r.payload)
            yield from client.request(encode_set(b"k", b"v"),
                                      Address("10.0.0.11", 11211), proto=UDP)
            r = yield from client.request(encode_get(b"k"),
                                          Address("10.0.0.11", 11211),
                                          proto=UDP)
            results["kv"] = bytes(r.payload)

        env.process(drive(env))
        env.run(until=50000)
        assert results == {"echo": b"hi", "kv": b"v"}


class TestKernelChain:
    def test_chain_serializes_on_default_stream(self):
        tb = Testbed()
        host = tb.machine("10.0.0.1")
        gpu = host.add_gpu()
        pool = host.pool(count=2, name="p")
        env = tb.env
        ends = []

        def request(env):
            yield from gpu.run_kernel_chain(pool, [50.0, 50.0])
            ends.append(env.now)

        env.process(request(env))
        env.process(request(env))
        env.run()
        # each chain holds the device: the second finishes a full chain
        # (not a single kernel) after the first
        assert ends[1] - ends[0] >= 100.0
