"""NICs, SmartNICs and the machine composition root."""

import pytest

from repro.config import (
    BluefieldProfile,
    DEFAULT_CONFIG,
    InnovaProfile,
    K40M,
    VcaProfile,
)
from repro.errors import ConfigError
from repro.hw import BluefieldSNIC, InnovaSNIC, IntelVCA, Machine, Nic
from repro.net import Address, Message, Network
from repro.sim import Environment, RngRegistry


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def network(env):
    return Network(env)


@pytest.fixture
def rng():
    return RngRegistry(0)


class TestNic:
    def test_send_delivers_through_network(self, env, network):
        a = Nic(env, network, "10.0.0.1")
        b = Nic(env, network, "10.0.0.2")
        msg = Message(Address("10.0.0.1", 1000), Address("10.0.0.2", 2000),
                      b"hello")

        def proc(env):
            yield from a.send(msg)

        env.process(proc(env))
        env.run()
        assert len(b.rx) == 1
        assert b.rx.try_get().payload == b"hello"

    def test_rx_ring_drops_overflow(self, env, network):
        a = Nic(env, network, "10.0.0.1")
        b = Nic(env, network, "10.0.0.2", rx_ring_entries=2)
        for i in range(5):
            a.send_async(Message(Address("10.0.0.1", 1000),
                                 Address("10.0.0.2", 2000), b"x"))
        env.run()
        assert len(b.rx) == 2
        assert network.counters.get("dropped_rx_ring") == 3

    def test_unroutable_message_counted(self, env, network):
        a = Nic(env, network, "10.0.0.1")
        a.send_async(Message(Address("10.0.0.1", 1), Address("10.9.9.9", 2),
                             b"x"))
        env.run()
        assert network.counters.get("dropped_no_route") == 1


class TestBluefield:
    def test_has_seven_worker_cores(self, env, network, rng):
        snic = BluefieldSNIC(env, network, "10.0.0.100", BluefieldProfile(),
                             DEFAULT_CONFIG.cache, rng.stream("llc"))
        assert snic.workers.count == 7
        assert snic.rdma is snic.nic.rdma

    def test_worker_count_validated(self, env, network, rng):
        bad = BluefieldProfile(worker_cores=99)
        with pytest.raises(ConfigError):
            BluefieldSNIC(env, network, "10.0.0.100", bad,
                          DEFAULT_CONFIG.cache, rng.stream("llc"))


class TestInnova:
    def test_afu_rate_limits_throughput(self, env, network):
        snic = InnovaSNIC(env, network, "10.0.0.101", InnovaProfile())
        done = []

        def proc(env):
            msg = Message(Address("c", 1), Address("10.0.0.101", 2), b"x" * 64)
            yield from snic.afu_process(msg)
            done.append(env.now)

        n = 100
        for _ in range(n):
            env.process(proc(env))
        env.run()
        measured_rate = n / env.now
        assert measured_rate <= InnovaProfile().afu_rate_pps * 1.01

    def test_tx_unsupported(self, env, network):
        snic = InnovaSNIC(env, network, "10.0.0.101", InnovaProfile())
        with pytest.raises(ConfigError):
            snic.check_tx_supported()


class TestVca:
    def test_three_nodes(self, env, rng):
        vca = IntelVCA(env, VcaProfile(), DEFAULT_CONFIG.cache,
                       rng.stream("llc"))
        assert len(vca.nodes) == 3

    def test_enclave_call_charges_transition(self, env, rng):
        vca = IntelVCA(env, VcaProfile(), DEFAULT_CONFIG.cache,
                       rng.stream("llc"))

        def proc(env):
            yield from vca.nodes[0].enclave_call(0.0)
            return env.now

        p = env.process(proc(env))
        env.run()
        assert p.value >= VcaProfile().enclave_transition

    def test_mqueue_access_crosses_pcie_with_workaround(self, env, rng):
        vca = IntelVCA(env, VcaProfile(), DEFAULT_CONFIG.cache,
                       rng.stream("llc"))
        assert vca.nodes[0].mqueue_access_latency() >= vca.pcie_crossing


class TestMachine:
    def test_machine_composition(self, env, network, rng):
        m = Machine(env, network, "10.0.0.1", DEFAULT_CONFIG,
                    rng_registry=rng)
        gpu = m.add_gpu(K40M)
        assert m.gpus == [gpu]
        assert gpu.name in m.fabric.devices()
        assert m.socket.profile.cores == 6

    def test_requires_rng_registry(self, env, network):
        with pytest.raises(ConfigError):
            Machine(env, network, "10.0.0.1", DEFAULT_CONFIG)

    def test_duplicate_device_name_rejected(self, env, network, rng):
        m = Machine(env, network, "10.0.0.1", DEFAULT_CONFIG,
                    rng_registry=rng)
        m.add_device("vca", object())
        with pytest.raises(ConfigError):
            m.add_device("vca", object())
