"""PCIe link / fabric models."""

import pytest

from repro.config import PcieProfile
from repro.errors import ConfigError
from repro.hw.pcie import PcieFabric, PcieLink
from repro.sim import Environment


@pytest.fixture
def env():
    return Environment()


class TestPcieLink:
    def test_transfer_time_has_latency_plus_serialization(self, env):
        link = PcieLink(env, PcieProfile.gen3_x16())

        def proc(env):
            yield from link.transfer(12000, "down")
            return env.now

        p = env.process(proc(env))
        env.run()
        expected = 0.5 + 12000 / PcieProfile.gen3_x16().bandwidth
        assert p.value == pytest.approx(expected)

    def test_directions_are_independent(self, env):
        link = PcieLink(env, PcieProfile.gen3_x16())
        ends = {}

        def proc(env, direction):
            yield from link.transfer(120000, direction)
            ends[direction] = env.now

        env.process(proc(env, "up"))
        env.process(proc(env, "down"))
        env.run()
        assert ends["up"] == pytest.approx(ends["down"])

    def test_same_direction_serializes(self, env):
        link = PcieLink(env, PcieProfile.gen3_x16())
        ends = []

        def proc(env):
            yield from link.transfer(120000, "down")
            ends.append(env.now)

        env.process(proc(env))
        env.process(proc(env))
        env.run()
        assert ends[1] == pytest.approx(2 * ends[0], rel=0.1)

    def test_bad_direction_rejected(self, env):
        link = PcieLink(env, PcieProfile.gen3_x16())
        env.process(link.transfer(10, "sideways"))
        with pytest.raises(ConfigError):
            env.run()

    def test_analytic_transfer_time(self, env):
        link = PcieLink(env, PcieProfile.gen3_x8())
        assert link.transfer_time(0) == pytest.approx(0.5)


class TestPcieFabric:
    def test_attach_and_route(self, env):
        fabric = PcieFabric(env)
        nic_link = PcieLink(env, PcieProfile.gen3_x8(), name="nic")
        gpu_link = PcieLink(env, PcieProfile.gen3_x16(), name="gpu")
        fabric.attach("nic", nic_link)
        fabric.attach("gpu", gpu_link)

        def proc(env):
            yield from fabric.dma("nic", "gpu", 4096)
            return env.now

        p = env.process(proc(env))
        env.run()
        expected = (nic_link.transfer_time(4096) + fabric.hop_latency
                    + gpu_link.transfer_time(4096))
        assert p.value == pytest.approx(expected)

    def test_double_attach_rejected(self, env):
        fabric = PcieFabric(env)
        link = PcieLink(env, PcieProfile.gen3_x8())
        fabric.attach("dev", link)
        with pytest.raises(ConfigError):
            fabric.attach("dev", link)

    def test_unknown_device_rejected(self, env):
        fabric = PcieFabric(env)
        with pytest.raises(ConfigError):
            fabric.link_of("ghost")

    def test_devices_listing(self, env):
        fabric = PcieFabric(env)
        fabric.attach("a", PcieLink(env, PcieProfile.gen3_x8()))
        assert fabric.devices() == ("a",)
