"""VCA nodes as first-class Lynx accelerators (§5.4 portability)."""

import pytest

from repro import Testbed
from repro.apps.base import EchoApp
from repro.apps.sgx_echo import SgxEchoApp
from repro.apps.base import ServerApp
from repro.hw import VcaNodeAccelerator
from repro.net import Address, ClosedLoopGenerator
from repro.net.packet import UDP


class EnclaveEchoApp(ServerApp):
    """AES echo expressed as an ordinary ServerApp (adapter demo)."""

    name = "enclave-echo"
    gpu_duration = 4.0  # enclave compute per request, E3-us

    def __init__(self):
        self._sgx = SgxEchoApp()

    def compute(self, payload):
        return self._sgx.process(payload)


def build(app):
    tb = Testbed()
    env = tb.env
    tb.machine("10.0.0.1")
    vca = tb.vca()
    snic = tb.bluefield("10.0.0.100")
    runtime, server = tb.lynx_on_bluefield(snic)
    accel = VcaNodeAccelerator(vca.nodes[0])
    proc = env.process(runtime.start_gpu_service(
        accel, app, port=9000, n_mqueues=2))
    env.run(until=500)
    return tb, env, server, proc.value, Address("10.0.0.100", 9000)


class TestSameRuntimeApi:
    def test_echo_service_on_vca_node(self):
        tb, env, server, service, addr = build(EchoApp())
        client = tb.client("10.0.1.1")
        results = []

        def drive(env):
            for i in range(6):
                r = yield from client.request(b"v%d" % i, addr, proto=UDP)
                results.append(bytes(r.payload))

        env.process(drive(env))
        env.run(until=50000)
        assert results == [b"v%d" % i for i in range(6)]

    def test_real_enclave_crypto_through_generic_api(self):
        app = EnclaveEchoApp()
        tb, env, server, service, addr = build(app)
        client = tb.client("10.0.1.1")
        answers = []

        def drive(env):
            ct = app._sgx.encrypt_value(6)
            r = yield from client.request(ct, addr, proto=UDP)
            answers.append(app._sgx.decrypt_value(r.payload))

        env.process(drive(env))
        env.run(until=50000)
        assert answers == [42]

    def test_mqueues_live_in_host_memory_per_workaround(self):
        tb, env, server, service, addr = build(EchoApp())
        for mq in service.mqueues:
            assert "mqueue-mem" in mq.memory.name

    def test_poll_latency_includes_pcie_crossing(self):
        tb = Testbed()
        tb.machine("10.0.0.1")
        vca = tb.vca()
        accel = VcaNodeAccelerator(vca.nodes[0])
        assert accel.poll_latency > 1.0  # PCIe + poll overhead
