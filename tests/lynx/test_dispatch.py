"""Dispatch policies."""

import pytest

from repro.errors import ConfigError
from repro.hw.memory import MemoryRegion
from repro.lynx.dispatch import ClientSteering, LeastLoaded, RoundRobin, make_policy
from repro.lynx.mqueue import MQueue
from repro.net.packet import Address, Message
from repro.sim import Environment


@pytest.fixture
def mqueues():
    env = Environment()
    memory = MemoryRegion(env, "m")
    return [MQueue(env, memory, 8, name="mq%d" % i) for i in range(4)]


def msg_from(ip, port=1000):
    return Message(Address(ip, port), Address("10.0.0.1", 7777), b"x")


class TestRoundRobin:
    def test_cycles(self, mqueues):
        policy = RoundRobin()
        picks = [policy.select(mqueues, msg_from("c")) for _ in range(8)]
        assert picks == mqueues + mqueues

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            RoundRobin().select([], msg_from("c"))


class TestLeastLoaded:
    def test_prefers_emptier_queue(self, mqueues):
        mqueues[0].claim_rx_slot()
        mqueues[0].claim_rx_slot()
        mqueues[1].claim_rx_slot()
        policy = LeastLoaded()
        assert policy.select(mqueues, msg_from("c")) in mqueues[2:]


class TestClientSteering:
    def test_same_client_same_queue(self, mqueues):
        policy = ClientSteering()
        first = policy.select(mqueues, msg_from("10.0.1.5", 4444))
        for _ in range(5):
            assert policy.select(mqueues, msg_from("10.0.1.5", 4444)) is first

    def test_clients_spread_over_queues(self, mqueues):
        policy = ClientSteering()
        picks = {policy.select(mqueues, msg_from("10.0.1.%d" % i, 4444))
                 for i in range(50)}
        assert len(picks) > 1


class TestFactory:
    def test_known_names(self):
        assert isinstance(make_policy("round-robin"), RoundRobin)
        assert isinstance(make_policy("least-loaded"), LeastLoaded)
        assert isinstance(make_policy("steering"), ClientSteering)

    def test_unknown_name(self):
        with pytest.raises(ConfigError):
            make_policy("magic")
