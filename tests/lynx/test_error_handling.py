"""Backend-error propagation through the mqueue metadata (§5.1)."""

import pytest

from repro import Testbed
from repro.apps.base import ServerApp
from repro.config import DEFAULT_CONFIG
from repro.errors import ConfigError
from repro.lynx.mqueue import ERR_CONNECTION, ERR_TIMEOUT, MQueue
from repro.net import Address, ClosedLoopGenerator
from repro.net.packet import TCP, UDP


class _BackendEchoApp(ServerApp):
    """Calls its backend per request; records the entry's error code."""

    name = "backend-echo"

    def __init__(self):
        self.errors = []

    def handle(self, ctx, entry):
        reply = yield from ctx.call("db", entry.payload)
        self.errors.append(reply.error)
        if reply.error:
            return b"ERR"
        return bytes(reply.payload)


def _deploy_with_backend(backend_ip, udp_backend=False, config=None):
    """GPU service whose backend may or may not exist."""
    tb = Testbed(config=config)
    env = tb.env
    host = tb.machine("10.0.0.1")
    gpu = host.add_gpu()
    snic = tb.bluefield("10.0.0.100")
    runtime, server = tb.lynx_on_bluefield(snic)
    app = _BackendEchoApp()
    proto = UDP if udp_backend else TCP
    proc = env.process(runtime.start_gpu_service(
        gpu, app, port=8000, n_mqueues=1,
        backends={"db": (Address(backend_ip, 11211), proto)}))
    return tb, env, app, server, proc


class TestBackendTimeout:
    def test_missing_udp_backend_yields_timeout_error(self):
        tb, env, app, server, proc = _deploy_with_backend(
            "10.9.9.9", udp_backend=True)
        env.run(until=5000)
        client = tb.client("10.0.1.1")
        gen = ClosedLoopGenerator(env, client, Address("10.0.0.100", 8000),
                                  concurrency=1,
                                  payload_fn=lambda i: b"ping", proto=UDP,
                                  timeout=100000)
        env.run(until=100000)
        assert app.errors, "handler never unblocked"
        assert set(app.errors) == {ERR_TIMEOUT}
        assert gen.completed > 0  # error responses still flow back

    def test_timeout_honours_configured_deadline(self):
        from dataclasses import replace

        config = DEFAULT_CONFIG.with_(
            lynx=replace(DEFAULT_CONFIG.lynx, backend_timeout=2000.0))
        tb, env, app, server, proc = _deploy_with_backend(
            "10.9.9.9", udp_backend=True, config=config)
        env.run(until=5000)
        client = tb.client("10.0.1.1")
        start = env.now

        def one(env):
            yield from client.request(b"ping", Address("10.0.0.100", 8000),
                                      proto=UDP)

        env.process(one(env))
        env.run(until=start + 10000)
        assert app.errors == [ERR_TIMEOUT]


class _TimingBackendApp(ServerApp):
    """Records how long each backend call blocked and its error code."""

    name = "timing-backend"

    def __init__(self, env):
        self.env = env
        self.calls = []

    def handle(self, ctx, entry):
        t0 = self.env.now
        reply = yield from ctx.call("db", entry.payload)
        self.calls.append((reply.error, self.env.now - t0))
        return b"ERR" if reply.error else bytes(reply.payload)


class TestBackendTimeoutDeadline:
    """The error entry is *deadline-timed*: iolib surfaces ERR_TIMEOUT
    at the configured backend_timeout rather than blocking forever or
    failing early."""

    DEADLINE = 2000.0

    def _deploy_timing_app(self):
        from dataclasses import replace

        config = DEFAULT_CONFIG.with_(
            lynx=replace(DEFAULT_CONFIG.lynx,
                         backend_timeout=self.DEADLINE))
        tb = Testbed(config=config)
        env = tb.env
        host = tb.machine("10.0.0.1")
        gpu = host.add_gpu()
        snic = tb.bluefield("10.0.0.100")
        runtime, server = tb.lynx_on_bluefield(snic)
        app = _TimingBackendApp(env)
        env.process(runtime.start_gpu_service(
            gpu, app, port=8000, n_mqueues=1,
            backends={"db": (Address("10.9.9.9", 11211), UDP)}))
        return tb, env, app

    def test_error_entry_lands_at_the_deadline(self):
        tb, env, app = self._deploy_timing_app()
        env.run(until=5000)
        client = tb.client("10.0.1.1")

        def one(env):
            yield from client.request(b"ping", Address("10.0.0.100", 8000),
                                      proto=UDP)

        env.process(one(env))
        env.run(until=20000)
        assert app.calls, "handler never unblocked"
        error, span = app.calls[0]
        assert error == ERR_TIMEOUT
        # The handler waited the configured deadline — not less (no
        # early failure) and not unboundedly more (no hang); the slack
        # covers watchdog scheduling and ring hops.
        assert span >= self.DEADLINE
        assert span <= self.DEADLINE + 200.0

    def test_handler_keeps_serving_after_timeout_errors(self):
        tb, env, app = self._deploy_timing_app()
        env.run(until=5000)
        client = tb.client("10.0.1.1")
        gen = ClosedLoopGenerator(env, client, Address("10.0.0.100", 8000),
                                  concurrency=1,
                                  payload_fn=lambda i: b"ping", proto=UDP,
                                  timeout=30000)
        env.run(until=40000)
        # Several requests cycled through: the error path resolves each
        # call instead of wedging the threadblock after the first.
        assert len(app.calls) >= 3
        assert all(err == ERR_TIMEOUT for err, _ in app.calls)
        assert gen.completed + gen.errors >= 3


class TestConnectionError:
    def test_unestablished_tcp_backend_flagged(self):
        tb, env, app, server, proc = _deploy_with_backend("10.9.9.9")
        # the TCP handshake to a dead backend never completes, so the
        # setup process is still waiting; build the path manually
        env.run(until=5000)
        assert proc.is_alive  # connect is stuck, as in reality

    def test_lost_connection_reported_not_hung(self):
        tb, env, app, server, proc = _deploy_with_backend("10.0.0.2")
        # a real backend machine exists but only completes handshakes
        from repro.apps.memcached import MemcachedServer
        from repro.config import XEON_VMA

        host2 = tb.machine("10.0.0.2")
        mc = MemcachedServer(env, host2.nic, host2.pool(count=1, name="mc"),
                             XEON_VMA)
        env.run(until=5000)
        service = proc.value
        assert service is not None
        # sever the connection under the SNIC's feet
        cmq = service.contexts[0].client_mqs["db"]
        cmq.conn.established = False
        client = tb.client("10.0.1.1")
        gen = ClosedLoopGenerator(env, client, Address("10.0.0.100", 8000),
                                  concurrency=1,
                                  payload_fn=lambda i: b"ping", proto=UDP,
                                  timeout=100000)
        env.run(until=60000)
        assert ERR_CONNECTION in app.errors


class TestBindingProtection:
    def test_mqueue_cannot_serve_two_ports(self):
        tb = Testbed()
        host = tb.machine("10.0.0.1")
        gpu = host.add_gpu()
        snic = tb.bluefield("10.0.0.100")
        runtime, server = tb.lynx_on_bluefield(snic)
        mqs = runtime.create_server_mqueues(gpu, port=7000, count=1)
        with pytest.raises(ConfigError, match="already bound"):
            server.bind(7001, mqs)
