"""Fast-path guarantees of the Lynx data plane.

The acceptance bar for the kernel fast-path work: message delivery on
the ingress path must not allocate a simulation Process per message
(asserted via the environment's processes-spawned counter), and the
egress poll loop's sweep/drain interleaving must consume every doorbell
a sweep satisfies.
"""

import pytest

from repro.config import DEFAULT_CONFIG, DEFAULT_RDMA, XEON_E5_2620
from repro.hw.cpu import CorePool
from repro.hw.memory import MemoryRegion
from repro.lynx.mqueue import MQueue, MQueueEntry
from repro.lynx.rmq import RemoteMQManager
from repro.net.packet import Address, Message
from repro.net.rdma import RdmaEngine
from repro.sim import Environment


class _Accel:
    def __init__(self, env):
        self.name = "accel"
        self.memory = MemoryRegion(env, "accel-mem")


@pytest.fixture
def setup():
    env = Environment()
    accel = _Accel(env)
    engine = RdmaEngine(env, DEFAULT_RDMA)
    qp = engine.connect(accel.memory)
    workers = CorePool(env, XEON_E5_2620, count=2)
    manager = RemoteMQManager(env, accel, qp, workers, DEFAULT_CONFIG.lynx)
    return env, accel, manager


def _msg(size=64):
    return Message(Address("10.0.1.1", 1000), Address("10.0.0.1", 7777),
                   b"x" * size)


class TestIngressAllocations:
    def test_no_process_spawned_per_delivered_message(self, setup):
        env, accel, manager = setup
        mq = manager.register(MQueue(env, accel.memory, 256))
        spawned_after_setup = env.processes_spawned
        for _ in range(100):
            assert manager.deliver(mq, _msg())
        env.run(until=5000)
        assert manager.deliveries == 100
        # The whole burst must ride callback state machines: not one
        # simulation Process was created after setup.
        assert env.processes_spawned == spawned_after_setup

    def test_delivery_op_records_are_recycled(self, setup):
        env, accel, manager = setup
        mq = manager.register(MQueue(env, accel.memory, 256))
        for _ in range(20):
            assert manager.deliver(mq, _msg())
        env.run(until=5000)
        assert manager.deliveries == 20
        # Sequential messages reuse a handful of pooled op records.
        assert 1 <= len(manager._op_pool) <= 20

    def test_barrier_mode_still_spawns_nothing(self, setup):
        env, accel, manager = setup
        manager.needs_barrier = True
        mq = manager.register(MQueue(env, accel.memory, 64))
        spawned_after_setup = env.processes_spawned
        for _ in range(10):
            assert manager.deliver(mq, _msg())
        env.run(until=5000)
        assert manager.deliveries == 10
        assert manager.qp.ops == 30  # write + barrier read + doorbell each
        assert env.processes_spawned == spawned_after_setup

    def test_membership_check_uses_set(self, setup):
        env, accel, manager = setup
        mq = manager.register(MQueue(env, accel.memory, 8))
        assert mq in manager._mqueue_set
        assert manager.mqueues == [mq]  # list API preserved for callers


class TestSweepDrainInterleaving:
    def test_sweep_consumes_doorbells_it_satisfied(self, setup):
        """Doorbells rung before/during a sweep are drained by it, so a
        burst of rings triggers far fewer sweeps than rings."""
        env, accel, manager = setup
        mq = manager.register(MQueue(env, accel.memory, 64))
        forwarded = []
        manager.on_tx(lambda q, e: forwarded.append(e))

        def accel_send(env):
            for _ in range(8):
                yield mq.push_tx(MQueueEntry(b"resp", 4))
                mq.ring_doorbell()

        env.process(accel_send(env))
        env.run(until=500)
        assert len(forwarded) == 8
        # One armed wakeup plus at most a couple of follow-up sweeps —
        # NOT one sweep per doorbell.
        assert 1 <= manager.sweeps <= 4
        # Every token the sweeps covered was consumed.
        assert len(manager._doorbells) == 0

    def test_poller_rearms_after_idle(self, setup):
        env, accel, manager = setup
        mq = manager.register(MQueue(env, accel.memory, 64))
        forwarded = []
        manager.on_tx(lambda q, e: forwarded.append(e))

        def burst(env, at):
            if at > env.now:
                yield env.charge(at - env.now)
            yield mq.push_tx(MQueueEntry(b"r", 4))
            mq.ring_doorbell()

        env.process(burst(env, 0.0))
        env.process(burst(env, 200.0))
        env.run(until=500)
        # The second burst (long after the poller went back to sleep)
        # was still picked up: the doorbell store re-armed the loop.
        assert len(forwarded) == 2
        assert manager.sweeps >= 2
