"""Innova RX-path Lynx server (§5.2)."""

import pytest

from repro import Testbed
from repro.config import InnovaProfile
from repro.errors import ConfigError
from repro.lynx.innova import InnovaLynxServer
from repro.lynx.mqueue import MQueue
from repro.net.packet import Address, Message, UDP


def build(num_mqueues=4, helper=True):
    tb = Testbed()
    env = tb.env
    host = tb.machine("10.0.0.1")
    gpu = host.add_gpu()
    snic = tb.innova("10.0.0.101")
    helper_pool = host.pool(count=1, name="helper") if helper else None
    server = InnovaLynxServer(env, snic, helper_pool)
    mqs = [MQueue(env, gpu.memory, entries=64, name="imq%d" % i)
           for i in range(num_mqueues)]
    server.bind(7777, mqs)
    return tb, env, gpu, snic, server, mqs


class TestPrototypeLimitations:
    def test_helper_thread_required(self):
        tb = Testbed()
        host = tb.machine("10.0.0.1")
        snic = tb.innova("10.0.0.101")
        with pytest.raises(ConfigError, match="helper"):
            InnovaLynxServer(tb.env, snic, None)

    def test_no_send_path(self):
        tb, env, gpu, snic, server, mqs = build()
        with pytest.raises(ConfigError, match="receive path only"):
            server.send_path_unsupported()


class TestReceivePath:
    def _flood(self, tb, n, port=7777):
        src = Address("10.0.8.1", 5555)
        for i in range(n):
            tb.network.deliver(Message(src, Address("10.0.0.101", port),
                                       b"x" * 64, proto=UDP))

    def test_messages_land_in_mqueues_round_robin(self):
        tb, env, gpu, snic, server, mqs = build()
        self._flood(tb, 8)
        tb.run(until=1000)
        assert [len(mq.rx_ring) for mq in mqs] == [2, 2, 2, 2]

    def test_unbound_port_dropped(self):
        tb, env, gpu, snic, server, mqs = build()
        self._flood(tb, 3, port=9999)
        tb.run(until=1000)
        assert server.dropped == 3

    def test_afu_counts_processed(self):
        tb, env, gpu, snic, server, mqs = build()
        self._flood(tb, 10)
        tb.run(until=1000)
        assert snic.processed.count == 10

    def test_helper_core_charged_per_message(self):
        tb, env, gpu, snic, server, mqs = build()
        helper = server.helper_pool
        self._flood(tb, 100)
        tb.run(until=2000)
        assert helper.utilization > 0.0


class TestProjectedFullInnova:
    """§5.2: the projected configuration (RC rings, no helper, TX path)."""

    def _build_full(self):
        from repro.config import INNOVA_PROJECTED

        tb = Testbed()
        env = tb.env
        host = tb.machine("10.0.0.1")
        gpu = host.add_gpu()
        snic = tb.innova("10.0.0.101", profile=INNOVA_PROJECTED)
        server = InnovaLynxServer(env, snic, helper_pool=None)
        mqs = [MQueue(env, gpu.memory, entries=64, name="fmq%d" % i)
               for i in range(4)]
        server.bind(7777, mqs)

        # GPU echo threadblocks using the standard I/O library
        from repro.lynx.iolib import AcceleratorIO

        io = AcceleratorIO(env, gpu.poll_latency)

        def body(tb_index):
            mq = mqs[tb_index]
            while True:
                entry = yield from io.recv(mq)
                yield from io.send(mq, entry.payload, reply_to=entry)

        gpu.persistent_kernel(4, body)
        return tb, env, snic, server

    def test_no_helper_needed(self):
        tb, env, snic, server = self._build_full()
        assert server.helper_pool is None

    def test_full_echo_roundtrip(self):
        tb, env, snic, server = self._build_full()
        client = tb.client("10.0.1.1")
        results = []

        def drive(env):
            for i in range(5):
                r = yield from client.request(b"ping-%d" % i,
                                              Address("10.0.0.101", 7777),
                                              proto=UDP)
                results.append(bytes(r.payload))

        env.process(drive(env))
        env.run(until=20000)
        assert results == [b"ping-%d" % i for i in range(5)]
        assert server.responses.count == 5

    def test_prototype_profile_still_refuses_tx(self):
        tb = Testbed()
        snic = tb.innova("10.0.0.101")
        host = tb.machine("10.0.0.1")
        server = InnovaLynxServer(tb.env, snic, host.pool(count=1, name="h"))
        with pytest.raises(ConfigError):
            server.send_path_unsupported()
