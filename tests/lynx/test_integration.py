"""End-to-end Lynx data-plane tests (the architectural invariants)."""

import pytest

from repro import Testbed
from repro.apps.base import EchoApp, SpinApp
from repro.config import GpuProfile, K40M
from repro.net import Address, ClosedLoopGenerator
from repro.net.packet import TCP, UDP


def build_service(platform="bluefield", app=None, n_mqueues=2, proto=UDP,
                  gpu_profile=K40M, remote=False, cores=1):
    tb = Testbed()
    env = tb.env
    host = tb.machine("10.0.0.1")
    gpu = host.add_gpu(gpu_profile)
    if platform == "bluefield":
        snic = tb.bluefield("10.0.0.100")
        runtime, server = tb.lynx_on_bluefield(snic)
        ip = "10.0.0.100"
    else:
        runtime, server = tb.lynx_on_host(host, cores=cores)
        ip = "10.0.0.1"
    app = app or EchoApp()
    proc = env.process(runtime.start_gpu_service(
        gpu, app, port=7777, n_mqueues=n_mqueues, proto=proto, remote=remote))
    env.run(until=100)
    service = proc.value
    return tb, env, host, gpu, server, service, Address(ip, 7777)


class TestEchoDataPlane:
    def test_payload_integrity_end_to_end(self):
        tb, env, host, gpu, server, service, addr = build_service()
        client = tb.client("10.0.1.1")
        payloads = [b"payload-%03d" % i for i in range(20)]
        results = []

        def run(env):
            for p in payloads:
                response = yield from client.request(p, addr, proto=UDP)
                results.append(bytes(response.payload))

        env.process(run(env))
        env.run(until=50000)
        assert results == payloads

    def test_responses_return_to_correct_client(self):
        """Two clients multiplexed on one server mqueue (§4.3)."""
        tb, env, host, gpu, server, service, addr = build_service(n_mqueues=1)
        c1 = tb.client("10.0.1.1")
        c2 = tb.client("10.0.1.2")
        got = {}

        def run(env, client, tag):
            for i in range(10):
                response = yield from client.request(tag, addr, proto=UDP)
                got.setdefault(client.ip, []).append(bytes(response.payload))

        env.process(run(env, c1, b"from-c1"))
        env.process(run(env, c2, b"from-c2"))
        env.run(until=50000)
        assert set(got["10.0.1.1"]) == {b"from-c1"}
        assert set(got["10.0.1.2"]) == {b"from-c2"}

    def test_host_cpu_idle_on_data_path(self):
        """§4.3: after setup the host CPU does nothing per-request."""
        tb, env, host, gpu, server, service, addr = build_service()
        client = tb.client("10.0.1.1")
        before = [core.utilization for core in host.socket.cores]
        gen = ClosedLoopGenerator(env, client, addr, concurrency=4,
                                  payload_fn=lambda i: b"x" * 32, proto=UDP)
        env.run(until=100000)
        assert gen.completed > 100
        for core in host.socket.cores:
            assert core.utilization == pytest.approx(0.0)

    def test_tcp_service_works_with_handshake(self):
        tb, env, host, gpu, server, service, addr = build_service(proto=TCP)
        client = tb.client("10.0.1.1")
        gen = ClosedLoopGenerator(env, client, addr, concurrency=2,
                                  payload_fn=lambda i: b"tcp-req", proto=TCP)
        env.run(until=100000)
        assert gen.completed > 50


class TestOverloadBehaviour:
    def test_udp_overload_drops_not_explodes(self):
        from repro.net import OpenLoopGenerator

        tb, env, host, gpu, server, service, addr = build_service(
            app=SpinApp(500.0), n_mqueues=1)
        client = tb.client("10.0.1.1")
        gen = OpenLoopGenerator(env, client, addr, rate_per_us=0.1,
                                payload_fn=lambda i: b"x" * 16, proto=UDP)
        env.run(until=100000)
        # offered 100K/s to a ~2K/s service: must shed, stay live
        assert service.dropped + server.dropped > 100
        assert client.responses.count > 50

    def test_ring_bounds_inflight_requests(self):
        tb, env, host, gpu, server, service, addr = build_service(
            app=SpinApp(1000.0), n_mqueues=1)
        mq = service.mqueues[0]
        assert mq.rx_occupancy <= mq.entries


class TestRemoteAccelerators:
    def test_remote_gpu_adds_rdma_latency(self):
        lat = {}
        for remote in (False, True):
            tb, env, host, gpu, server, service, addr = build_service(
                app=SpinApp(50.0), remote=remote, n_mqueues=1)
            client = tb.client("10.0.1.1")
            ClosedLoopGenerator(env, client, addr, concurrency=1,
                                payload_fn=lambda i: b"x" * 16, proto=UDP)
            tb.warmup_then_measure([client.latency], 5000, 20000)
            lat[remote] = client.latency.p50()
        extra = lat[True] - lat[False]
        # §6.3: "using remote GPUs adds about 8us latency"
        assert 4.0 <= extra <= 14.0


class TestConsistencyBarrier:
    def test_barrier_gpu_pays_extra_latency(self):
        barrier_profile = GpuProfile(name="k40m-barrier",
                                     needs_write_barrier=True)
        lat = {}
        for profile in (K40M, barrier_profile):
            tb, env, host, gpu, server, service, addr = build_service(
                app=SpinApp(20.0), gpu_profile=profile, n_mqueues=1)
            client = tb.client("10.0.1.1")
            ClosedLoopGenerator(env, client, addr, concurrency=1,
                                payload_fn=lambda i: b"x" * 16, proto=UDP)
            tb.warmup_then_measure([client.latency], 5000, 20000)
            lat[profile.name] = client.latency.p50()
        extra = lat["k40m-barrier"] - lat["k40m"]
        # §5.1: the workaround costs ~5us per message.
        assert 4.0 <= extra <= 8.0


class TestMultiTenancy:
    def test_two_apps_on_different_ports(self):
        tb = Testbed()
        env = tb.env
        host = tb.machine("10.0.0.1")
        gpu1 = host.add_gpu(K40M)
        gpu2 = host.add_gpu(K40M)
        snic = tb.bluefield("10.0.0.100")
        runtime, server = tb.lynx_on_bluefield(snic)
        env.process(runtime.start_gpu_service(gpu1, EchoApp(), port=7001,
                                              n_mqueues=1))
        env.process(runtime.start_gpu_service(gpu2, SpinApp(10.0, b"svc2"),
                                              port=7002, n_mqueues=1))
        env.run(until=100)
        client = tb.client("10.0.1.1")
        results = {}

        def run(env):
            r1 = yield from client.request(b"one", Address("10.0.0.100", 7001),
                                           proto=UDP)
            r2 = yield from client.request(b"two", Address("10.0.0.100", 7002),
                                           proto=UDP)
            results["one"] = bytes(r1.payload)
            results["two"] = bytes(r2.payload)

        env.process(run(env))
        env.run(until=10000)
        assert results == {"one": b"one", "two": b"svc2"}


class TestTenantAccounting:
    def test_per_port_stats_attribute_traffic(self):
        tb = Testbed()
        env = tb.env
        host = tb.machine("10.0.0.1")
        gpu1 = host.add_gpu(K40M)
        gpu2 = host.add_gpu(K40M)
        snic = tb.bluefield("10.0.0.100")
        runtime, server = tb.lynx_on_bluefield(snic)
        env.process(runtime.start_gpu_service(gpu1, EchoApp(), port=7001))
        env.process(runtime.start_gpu_service(gpu2, EchoApp(), port=7002))
        env.run(until=200)
        client = tb.client("10.0.1.1")

        def drive(env):
            for i in range(9):
                port = 7001 if i % 3 else 7002  # 6 vs 3 requests
                yield from client.request(b"x", Address("10.0.0.100", port),
                                          proto=UDP)

        env.process(drive(env))
        env.run(until=50000)
        reqs1, resps1 = server.port_stats(7001)
        reqs2, resps2 = server.port_stats(7002)
        assert (reqs1.count, resps1.count) == (6, 6)
        assert (reqs2.count, resps2.count) == (3, 3)

    def test_unknown_port_stats_rejected(self):
        from repro.errors import ConfigError

        tb = Testbed()
        snic = tb.bluefield("10.0.0.100")
        runtime, server = tb.lynx_on_bluefield(snic)
        with pytest.raises(ConfigError):
            server.port_stats(1234)


class TestTracing:
    def test_tracer_records_data_plane_events(self):
        from repro.config import DEFAULT_CONFIG

        tb = Testbed(config=DEFAULT_CONFIG.with_(trace=True))
        env = tb.env
        host = tb.machine("10.0.0.1")
        gpu = host.add_gpu(K40M)
        snic = tb.bluefield("10.0.0.100")
        runtime, server = tb.lynx_on_bluefield(snic)
        env.process(runtime.start_gpu_service(gpu, EchoApp(), port=7777))
        env.run(until=200)
        client = tb.client("10.0.1.1")

        def one(env):
            yield from client.request(b"x", Address("10.0.0.100", 7777),
                                      proto=UDP)

        env.process(one(env))
        env.run(until=10000)
        events = [record[2] for record in tb.tracer.records]
        assert events.count("rx") == 1
        assert events.count("dispatch") == 1
        assert events.count("tx") == 1
        # chronological order through the pipeline
        times = [record[0] for record in tb.tracer.records]
        assert times == sorted(times)

    def test_tracing_disabled_by_default(self):
        tb, env, host, gpu, server, service, addr = build_service()
        client = tb.client("10.0.1.1")

        def one(env):
            yield from client.request(b"x", addr, proto=UDP)

        env.process(one(env))
        env.run(until=10000)
        assert tb.tracer.records == []
