"""Accelerator I/O library and runtime setup validation."""

import pytest

from repro import Testbed
from repro.apps.base import EchoApp
from repro.errors import ConfigError
from repro.hw.memory import MemoryRegion
from repro.lynx.iolib import AcceleratorIO
from repro.lynx.mqueue import CLIENT, MQueue, MQueueEntry
from repro.net.packet import Address
from repro.sim import Environment, Store


class TestAcceleratorIO:
    def test_negative_latency_rejected(self):
        with pytest.raises(ConfigError):
            AcceleratorIO(Environment(), -1.0)

    def test_recv_charges_local_latency(self):
        env = Environment()
        memory = MemoryRegion(env, "m")
        mq = MQueue(env, memory, 8)
        io = AcceleratorIO(env, local_latency=0.7)
        mq.claim_rx_slot()
        mq.complete_rx(MQueueEntry(b"req", 3))

        def proc(env):
            entry = yield from io.recv(mq)
            return (env.now, bytes(entry.payload))

        p = env.process(proc(env))
        env.run()
        assert p.value == (0.7, b"req")
        assert io.received == 1

    def test_send_rings_doorbell(self):
        env = Environment()
        memory = MemoryRegion(env, "m")
        mq = MQueue(env, memory, 8)
        mq.tx_doorbell = Store(env)
        io = AcceleratorIO(env, local_latency=0.5)

        def proc(env):
            yield from io.send(mq, b"resp")

        env.process(proc(env))
        env.run()
        assert len(mq.tx_ring) == 1
        assert mq.tx_doorbell.try_get() is mq
        assert io.sent == 1

    def test_send_propagates_reply_routing(self):
        env = Environment()
        memory = MemoryRegion(env, "m")
        mq = MQueue(env, memory, 8)
        mq.tx_doorbell = Store(env)
        io = AcceleratorIO(env, local_latency=0.1)
        from repro.net.packet import Message

        request = Message(Address("c", 1), Address("s", 2), b"q")
        incoming = MQueueEntry(b"q", 1, request_msg=request)

        def proc(env):
            yield from io.send(mq, b"a", reply_to=incoming)

        env.process(proc(env))
        env.run()
        sent_entry = mq.tx_ring.try_get()
        assert sent_entry.request_msg is request


class TestRuntimeValidation:
    def _runtime(self):
        tb = Testbed()
        host = tb.machine("10.0.0.1")
        gpu = host.add_gpu()
        snic = tb.bluefield("10.0.0.100")
        runtime, server = tb.lynx_on_bluefield(snic)
        return tb, host, gpu, runtime, server

    def test_attach_is_idempotent_per_accelerator(self):
        tb, host, gpu, runtime, server = self._runtime()
        m1 = runtime.attach_accelerator(gpu)
        m2 = runtime.attach_accelerator(gpu)
        assert m1 is m2

    def test_hidden_memory_rejected(self):
        tb, host, gpu, runtime, server = self._runtime()
        hidden = MemoryRegion(tb.env, "hidden", exposed_on_pcie=False)
        with pytest.raises(ConfigError, match="BAR-exposed"):
            runtime.attach_accelerator(object(), memory=hidden)

    def test_unknown_backend_in_context(self):
        tb, host, gpu, runtime, server = self._runtime()
        proc = tb.env.process(runtime.start_gpu_service(
            gpu, EchoApp(), port=7777, n_mqueues=1))
        tb.run(until=100)
        ctx = proc.value.contexts[0]
        with pytest.raises(ConfigError, match="no client mqueue"):
            # generator raises on first resume
            next(ctx.call("missing-backend", b"x"))

    def test_barrier_inferred_from_gpu_profile(self):
        from repro.config import GpuProfile

        tb, host, gpu, runtime, server = self._runtime()
        barrier_gpu = host.add_gpu(GpuProfile(name="ordered",
                                              needs_write_barrier=True))
        manager = runtime.attach_accelerator(barrier_gpu)
        assert manager.needs_barrier

    def test_service_handle_counts(self):
        tb, host, gpu, runtime, server = self._runtime()
        proc = tb.env.process(runtime.start_gpu_service(
            gpu, EchoApp(), port=7777, n_mqueues=3))
        tb.run(until=100)
        service = proc.value
        assert len(service.mqueues) == 3
        assert len(service.threadblocks) == 3
        assert service.delivered == 0 and service.dropped == 0
