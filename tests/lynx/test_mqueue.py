"""mqueue ring semantics."""

import pytest

from repro.errors import ConfigError
from repro.hw.memory import MemoryRegion
from repro.lynx.mqueue import CLIENT, MQueue, MQueueEntry, SERVER
from repro.net.packet import Address
from repro.sim import Environment, Store


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def memory(env):
    return MemoryRegion(env, "accel-mem")


def make_entry(payload=b"x"):
    return MQueueEntry(payload=payload, size=len(payload))


class TestConstruction:
    def test_server_mqueue_is_connectionless(self, env, memory):
        with pytest.raises(ConfigError):
            MQueue(env, memory, 8, kind=SERVER,
                   destination=Address("10.0.0.2", 11211))

    def test_client_mqueue_needs_destination(self, env, memory):
        with pytest.raises(ConfigError):
            MQueue(env, memory, 8, kind=CLIENT)

    def test_entries_must_be_positive(self, env, memory):
        with pytest.raises(ConfigError):
            MQueue(env, memory, 0)

    def test_unknown_kind_rejected(self, env, memory):
        with pytest.raises(ConfigError):
            MQueue(env, memory, 8, kind="weird")


class TestRxRing:
    def test_claim_then_complete_delivers(self, env, memory):
        mq = MQueue(env, memory, 4)
        assert mq.claim_rx_slot()
        mq.complete_rx(make_entry())
        env.run()
        assert len(mq.rx_ring) == 1
        assert mq.delivered == 1

    def test_ring_full_claims_fail_and_count_drops(self, env, memory):
        mq = MQueue(env, memory, 2)
        assert mq.claim_rx_slot()
        assert mq.claim_rx_slot()
        assert not mq.claim_rx_slot()
        assert mq.dropped == 1

    def test_pop_releases_claim(self, env, memory):
        mq = MQueue(env, memory, 1)
        assert mq.claim_rx_slot()
        mq.complete_rx(make_entry())

        def consumer(env):
            yield mq.pop_rx()

        env.process(consumer(env))
        env.run()
        assert mq.rx_occupancy == 0
        assert mq.claim_rx_slot()  # space again

    def test_abort_releases_claim(self, env, memory):
        mq = MQueue(env, memory, 1)
        assert mq.claim_rx_slot()
        mq.abort_rx()
        assert mq.rx_occupancy == 0


class TestWraparound:
    def test_ring_wraps_fifo_over_three_generations(self, env, memory):
        mq = MQueue(env, memory, 4)
        popped = []

        def cycle(env):
            for i in range(12):
                assert mq.claim_rx_slot()
                mq.complete_rx(make_entry(payload=b"p%d" % i))
                if (i + 1) % 4 == 0:  # drain a full ring generation
                    for _ in range(4):
                        entry = yield mq.pop_rx()
                        popped.append(entry.payload)

        env.process(cycle(env))
        env.run()
        assert popped == [b"p%d" % i for i in range(12)]
        assert mq.rx_occupancy == 0
        assert mq.delivered == 12
        assert mq.dropped == 0


class TestBackpressure:
    def test_parked_producer_resumes_when_consumer_frees_slot(self, env,
                                                              memory):
        mq = MQueue(env, memory, 1)
        assert mq.claim_rx_slot()
        mq.complete_rx(make_entry(b"first"))
        order = []

        def producer(env):
            yield mq.rx_ring.claim_wait()  # ring full: parked on credits
            order.append("granted")
            mq.complete_rx(make_entry(b"second"))

        def consumer(env):
            yield env.charge(3.0)
            entry = yield mq.pop_rx()
            order.append("popped-" + entry.payload.decode())

        env.process(producer(env))
        env.process(consumer(env))
        env.run()
        assert order == ["popped-first", "granted"]
        assert len(mq.rx_ring) == 1
        assert mq.delivered == 2
        assert mq.dropped == 0


class TestTxRing:
    def test_doorbell_requires_registration(self, env, memory):
        mq = MQueue(env, memory, 4)
        with pytest.raises(ConfigError):
            mq.ring_doorbell()

    def test_doorbell_notifies_channel(self, env, memory):
        mq = MQueue(env, memory, 4)
        mq.tx_doorbell = Store(env)
        mq.ring_doorbell()
        env.run()
        assert mq.tx_doorbell.try_get() is mq

    def test_push_tx_counts(self, env, memory):
        mq = MQueue(env, memory, 4)

        def proc(env):
            yield mq.push_tx(make_entry())

        env.process(proc(env))
        env.run()
        assert mq.sent == 1
        assert len(mq.tx_ring) == 1


class TestCompleteRxFrame:
    """Frame-native RDMA completion (DESIGN.md §4.14)."""

    def _claimed_mq(self, env, memory):
        mq = MQueue(env, memory, 8, kind=SERVER)
        assert mq.claim_rx_slot()
        env.run()  # drain any bookkeeping events so the instant is clean
        return mq

    def test_inline_completion_matches_scalar_state(self, env, memory):
        scalar = self._claimed_mq(env, memory)
        framed = self._claimed_mq(env, memory)

        scalar.complete_rx(make_entry(b"abc"))
        env.run()
        eid = env._eid
        framed.complete_rx_frame(make_entry(b"abc"))
        assert env._eid == eid + 1  # burned the put's sequence number

        for mq in (scalar, framed):
            assert mq.delivered == 1
            assert len(mq.rx_ring._items) == 1
            assert mq.rx_ring._items[0].payload == b"abc"
            assert mq.rx_ring._items[0].enqueued_at == env.now
            assert mq.rx_ring.total_put == scalar.rx_ring.total_put

    def test_falls_back_when_consumer_parked(self, env, memory):
        mq = self._claimed_mq(env, memory)
        popped = []

        def consumer(env):
            popped.append((yield mq.pop_rx()))

        env.process(consumer(env))
        env.run()
        assert mq.rx_ring._getters  # consumer parked on the empty ring
        mq.complete_rx_frame(make_entry(b"zzz"))
        env.run()
        # The scalar put woke the parked consumer; inline push couldn't.
        assert [e.payload for e in popped] == [b"zzz"]

    def test_falls_back_without_a_held_claim(self, env, memory):
        mq = MQueue(env, memory, 8, kind=SERVER)
        env.run()
        with pytest.raises(Exception):
            # No claim held: the scalar path's accounting must reject
            # this, and the frame path must route into it rather than
            # silently pushing past the credit accounting.
            mq.complete_rx_frame(make_entry())
