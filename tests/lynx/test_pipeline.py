"""Accelerator composition pipelines (§8 future work, implemented)."""

import pytest

from repro import Testbed
from repro.apps.base import ServerApp, SpinApp
from repro.errors import ConfigError
from repro.lynx import PipelineStage
from repro.lynx.pipeline import start_pipeline
from repro.net import Address, ClosedLoopGenerator
from repro.net.packet import UDP


class TagApp(ServerApp):
    """Appends a stage tag to the payload (composition is observable)."""

    name = "tag"
    gpu_duration = 10.0

    def __init__(self, tag):
        self.tag = tag

    def compute(self, payload):
        return bytes(payload) + self.tag


def build(n_stages, apps=None, n_mqueues=1):
    tb = Testbed()
    env = tb.env
    host = tb.machine("10.0.0.1")
    gpus = [host.add_gpu() for _ in range(n_stages)]
    snic = tb.bluefield("10.0.0.100")
    runtime, server = tb.lynx_on_bluefield(snic)
    apps = apps or [TagApp(b"|%d" % i) for i in range(n_stages)]
    stages = [PipelineStage(gpus[i], apps[i], n_mqueues=n_mqueues)
              for i in range(n_stages)]
    proc = env.process(runtime.start_pipeline(stages, port=7000))
    env.run(until=30000)
    return tb, env, server, proc.value, Address("10.0.0.100", 7000)


class TestComposition:
    def test_empty_pipeline_rejected(self):
        tb = Testbed()
        snic = tb.bluefield("10.0.0.100")
        runtime, server = tb.lynx_on_bluefield(snic)

        def boom(env):
            yield from start_pipeline(runtime, [], port=7000)

        tb.env.process(boom(tb.env))
        with pytest.raises(ConfigError):
            tb.run()

    def test_single_stage_behaves_like_plain_service(self):
        tb, env, server, pipe, addr = build(1)
        client = tb.client("10.0.1.1")
        results = []

        def drive(env):
            response = yield from client.request(b"x", addr, proto=UDP)
            results.append(bytes(response.payload))

        env.process(drive(env))
        env.run(until=50000)
        assert results == [b"x|0"]
        assert pipe.depth == 1

    def test_stages_apply_in_order(self):
        tb, env, server, pipe, addr = build(3)
        client = tb.client("10.0.1.1")
        results = []

        def drive(env):
            for i in range(4):
                response = yield from client.request(b"r%d" % i, addr,
                                                     proto=UDP)
                results.append(bytes(response.payload))

        env.process(drive(env))
        env.run(until=200000)
        assert results == [b"r%d|0|1|2" % i for i in range(4)]
        assert pipe.relay_errors == 0

    def test_each_stage_runs_on_its_own_gpu(self):
        tb, env, server, pipe, addr = build(2)
        client = tb.client("10.0.1.1")
        ClosedLoopGenerator(env, client, addr, concurrency=2,
                            payload_fn=lambda i: b"x", proto=UDP)
        env.run(until=100000)
        for service in pipe.services:
            assert service.delivered > 10

    def test_latency_grows_with_depth(self):
        p50 = {}
        for depth in (1, 3):
            tb, env, server, pipe, addr = build(
                depth, apps=[SpinApp(30.0) for _ in range(depth)])
            client = tb.client("10.0.1.1")
            ClosedLoopGenerator(env, client, addr, concurrency=1,
                                payload_fn=lambda i: b"x", proto=UDP)
            tb.warmup_then_measure([client.latency], 20000, 60000)
            p50[depth] = client.latency.p50()
        # two extra stages: two extra kernels + two extra hairpin hops
        assert p50[3] > p50[1] + 2 * 30.0

    def test_host_cpu_still_idle(self):
        tb, env, server, pipe, addr = build(2)
        host = tb.machines["10.0.0.1"]
        client = tb.client("10.0.1.1")
        ClosedLoopGenerator(env, client, addr, concurrency=4,
                            payload_fn=lambda i: b"x", proto=UDP)
        env.run(until=100000)
        for core in host.socket.cores:
            assert core.utilization == pytest.approx(0.0)


class TestFailurePropagation:
    def test_stuck_stage_surfaces_as_error(self):
        """Kill the downstream stage's threadblocks: upstream gets a
        timeout error entry instead of hanging."""
        from dataclasses import replace

        from repro.config import DEFAULT_CONFIG

        config = DEFAULT_CONFIG.with_(
            lynx=replace(DEFAULT_CONFIG.lynx, backend_timeout=3000.0))
        tb = Testbed(config=config)
        env = tb.env
        host = tb.machine("10.0.0.1")
        gpus = [host.add_gpu() for _ in range(2)]
        snic = tb.bluefield("10.0.0.100")
        runtime, server = tb.lynx_on_bluefield(snic)
        stages = [PipelineStage(gpus[0], TagApp(b"|0")),
                  PipelineStage(gpus[1], TagApp(b"|1"))]
        proc = env.process(runtime.start_pipeline(stages, port=7000))
        env.run(until=30000)
        pipe = proc.value
        for tb_proc in pipe.services[1].threadblocks:
            tb_proc.interrupt("stage crash")
        env.run(until=env.now + 100)
        client = tb.client("10.0.1.1")
        gen = ClosedLoopGenerator(env, client, Address("10.0.0.100", 7000),
                                  concurrency=1, payload_fn=lambda i: b"x",
                                  proto=UDP, timeout=50000)
        env.run(until=env.now + 60000)
        assert pipe.relay_errors > 0
        assert gen.completed > 0  # upstream still answers (with errors)
