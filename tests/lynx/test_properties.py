"""Property-based tests of the Lynx data plane invariants."""

from hypothesis import given, settings, strategies as st

from repro.hw.memory import MemoryRegion
from repro.lynx.mqueue import MQueue, MQueueEntry
from repro.sim import Environment


@given(ops=st.lists(st.sampled_from(["claim", "complete", "pop", "abort"]),
                    min_size=1, max_size=120),
       entries=st.integers(min_value=1, max_value=16))
@settings(max_examples=80, deadline=None)
def test_mqueue_rx_conservation(ops, entries):
    """Under any legal claim/complete/pop/abort sequence:
    0 <= occupancy <= entries, and delivered == popped + ring depth."""
    env = Environment()
    mq = MQueue(env, MemoryRegion(env, "m"), entries)
    claimed_not_completed = 0
    completed_not_popped = 0
    popped = 0

    for op in ops:
        if op == "claim":
            ok = mq.claim_rx_slot()
            expected = (claimed_not_completed + completed_not_popped
                        < entries)
            assert ok == expected
            if ok:
                claimed_not_completed += 1
        elif op == "complete" and claimed_not_completed > 0:
            mq.complete_rx(MQueueEntry(b"x", 1))
            claimed_not_completed -= 1
            completed_not_popped += 1
        elif op == "pop" and completed_not_popped > 0:
            def popper(env):
                yield mq.pop_rx()

            env.process(popper(env))
            env.run(until=env.now + 1)
            completed_not_popped -= 1
            popped += 1
        elif op == "abort" and claimed_not_completed > 0:
            mq.abort_rx()
            claimed_not_completed -= 1
        env.run(until=env.now + 1)
        assert 0 <= mq.rx_occupancy <= entries
        assert mq.rx_occupancy == claimed_not_completed + completed_not_popped
        assert mq.delivered == popped + len(mq.rx_ring)


@given(payloads=st.lists(st.binary(min_size=1, max_size=128), min_size=1,
                         max_size=25))
@settings(max_examples=25, deadline=None)
def test_echo_end_to_end_integrity(payloads):
    """Arbitrary payloads survive the full Lynx data plane unchanged and
    arrive back in order (single client, single mqueue)."""
    from repro import Testbed
    from repro.apps.base import EchoApp
    from repro.net import Address
    from repro.net.packet import UDP

    tb = Testbed()
    env = tb.env
    host = tb.machine("10.0.0.1")
    gpu = host.add_gpu()
    snic = tb.bluefield("10.0.0.100")
    runtime, server = tb.lynx_on_bluefield(snic)
    env.process(runtime.start_gpu_service(gpu, EchoApp(), port=7777,
                                          n_mqueues=2))
    env.run(until=100)
    client = tb.client("10.0.1.1")
    received = []

    def drive(env):
        for payload in payloads:
            response = yield from client.request(payload,
                                                 Address("10.0.0.100", 7777),
                                                 proto=UDP)
            received.append(bytes(response.payload))

    env.process(drive(env))
    env.run(until=100 + 200.0 * len(payloads))
    assert received == payloads


@given(n_messages=st.integers(min_value=1, max_value=60),
       ring=st.integers(min_value=1, max_value=8))
@settings(max_examples=20, deadline=None)
def test_message_conservation_under_overload(n_messages, ring):
    """Every admitted request is exactly one of: delivered or dropped."""
    from dataclasses import replace

    from repro import Testbed
    from repro.apps.base import SpinApp
    from repro.config import DEFAULT_CONFIG
    from repro.net.packet import Address, Message, UDP

    config = DEFAULT_CONFIG.with_(
        lynx=replace(DEFAULT_CONFIG.lynx, ring_entries=ring))
    tb = Testbed(config=config)
    env = tb.env
    host = tb.machine("10.0.0.1")
    gpu = host.add_gpu()
    snic = tb.bluefield("10.0.0.100")
    runtime, server = tb.lynx_on_bluefield(snic)
    proc = env.process(runtime.start_gpu_service(
        gpu, SpinApp(500.0), port=7777, n_mqueues=1))
    env.run(until=100)
    service = proc.value
    src = Address("10.0.8.1", 5555)
    for _ in range(n_messages):
        tb.network.deliver(Message(src, Address("10.0.0.100", 7777),
                                   b"x" * 16, proto=UDP))
    env.run(until=100 + n_messages * 600.0 + 2000.0)
    admitted = server.requests.count
    assert admitted == service.delivered + service.dropped
    # nothing invented: admitted <= offered
    assert admitted <= n_messages
