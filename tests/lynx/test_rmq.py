"""Remote MQ Manager unit behaviour."""

from dataclasses import replace

import pytest

from repro.config import DEFAULT_CONFIG, DEFAULT_RDMA
from repro.errors import ConfigError
from repro.hw.cpu import CorePool
from repro.config import XEON_E5_2620
from repro.hw.memory import MemoryRegion
from repro.lynx.mqueue import MQueue, METADATA_BYTES
from repro.lynx.rmq import RemoteMQManager
from repro.net.packet import Address, Message
from repro.net.rdma import RdmaEngine
from repro.sim import Environment


class _Accel:
    def __init__(self, env):
        self.name = "accel"
        self.memory = MemoryRegion(env, "accel-mem")


@pytest.fixture
def setup():
    env = Environment()
    accel = _Accel(env)
    engine = RdmaEngine(env, DEFAULT_RDMA)
    qp = engine.connect(accel.memory)
    workers = CorePool(env, XEON_E5_2620, count=2)
    manager = RemoteMQManager(env, accel, qp, workers, DEFAULT_CONFIG.lynx)
    return env, accel, manager


def _msg(size=64):
    return Message(Address("10.0.1.1", 1000), Address("10.0.0.1", 7777),
                   b"x" * size)


class TestRegistration:
    def test_register_wires_doorbell(self, setup):
        env, accel, manager = setup
        mq = MQueue(env, accel.memory, 8)
        manager.register(mq)
        assert mq.tx_doorbell is manager._doorbells
        assert mq in manager.mqueues

    def test_double_registration_rejected(self, setup):
        env, accel, manager = setup
        mq = MQueue(env, accel.memory, 8)
        manager.register(mq)
        with pytest.raises(ConfigError):
            manager.register(mq)

    def test_foreign_mqueue_rejected_on_deliver(self, setup):
        env, accel, manager = setup
        foreign = MQueue(env, accel.memory, 8)
        with pytest.raises(ConfigError):
            manager.deliver(foreign, _msg())


class TestIngress:
    def test_deliver_places_entry_after_rdma(self, setup):
        env, accel, manager = setup
        mq = manager.register(MQueue(env, accel.memory, 8))
        assert manager.deliver(mq, _msg())
        assert len(mq.rx_ring) == 0  # not yet: RDMA in flight
        env.run(until=50)
        assert len(mq.rx_ring) == 1
        assert manager.deliveries == 1
        # coalesced: one write of payload+metadata
        assert manager.qp.bytes_moved == 64 + METADATA_BYTES

    def test_full_ring_drops(self, setup):
        env, accel, manager = setup
        mq = manager.register(MQueue(env, accel.memory, 2))
        assert manager.deliver(mq, _msg())
        assert manager.deliver(mq, _msg())
        assert not manager.deliver(mq, _msg())
        assert mq.dropped == 1

    def test_barrier_mode_uses_three_transactions(self, setup):
        env, accel, manager = setup
        manager.needs_barrier = True
        mq = manager.register(MQueue(env, accel.memory, 8))
        manager.deliver(mq, _msg())
        env.run(until=100)
        # payload write + barrier read + doorbell write
        assert manager.qp.ops == 3


def _manager(env, accel, profile):
    engine = RdmaEngine(env, DEFAULT_RDMA)
    qp = engine.connect(accel.memory)
    workers = CorePool(env, XEON_E5_2620, count=2)
    return RemoteMQManager(env, accel, qp, workers, profile)


class TestBatching:
    def test_batched_deliveries_coalesce_doorbells(self):
        env = Environment()
        accel = _Accel(env)
        profile = replace(DEFAULT_CONFIG.lynx, batch_size=4)
        manager = _manager(env, accel, profile)
        mq = manager.register(MQueue(env, accel.memory, 16))
        for _ in range(8):
            assert manager.deliver(mq, _msg())
        env.run(until=200)
        assert manager.deliveries == 8
        assert len(mq.rx_ring) == 8
        # two coalesced batch writes instead of eight per-message ops
        assert manager.qp.ops == 2
        assert manager.qp.bytes_moved == 2 * 4 * (64 + METADATA_BYTES)

    def test_idle_manager_posts_a_batch_of_one_immediately(self):
        env = Environment()
        accel = _Accel(env)
        profile = replace(DEFAULT_CONFIG.lynx, batch_size=8)
        manager = _manager(env, accel, profile)
        mq = manager.register(MQueue(env, accel.memory, 8))
        assert manager.deliver(mq, _msg())
        env.run(until=50)
        assert manager.qp.ops == 1
        assert manager.deliveries == 1


class TestBackpressure:
    def test_full_ring_parks_instead_of_dropping(self):
        env = Environment()
        accel = _Accel(env)
        profile = replace(DEFAULT_CONFIG.lynx, backpressure=True)
        manager = _manager(env, accel, profile)
        mq = manager.register(MQueue(env, accel.memory, 2))
        assert manager.deliver(mq, _msg())
        assert manager.deliver(mq, _msg())
        assert manager.deliver(mq, _msg())  # parked, not dropped
        assert mq.dropped == 0
        assert mq.parked == 1
        env.run(until=100)
        assert manager.deliveries == 2  # third waits for a free slot

        def consumer(env):
            yield mq.pop_rx()

        env.process(consumer(env))
        env.run(until=300)
        assert mq.parked == 0
        assert manager.deliveries == 3
        assert mq.dropped == 0

    def test_parked_backlog_is_bounded(self):
        env = Environment()
        accel = _Accel(env)
        profile = replace(DEFAULT_CONFIG.lynx, backpressure=True)
        manager = _manager(env, accel, profile)
        mq = manager.register(MQueue(env, accel.memory, 2))
        assert manager.deliver(mq, _msg())
        assert manager.deliver(mq, _msg())
        assert manager.deliver(mq, _msg())  # parked
        assert manager.deliver(mq, _msg())  # parked (== ring entries)
        assert not manager.deliver(mq, _msg())  # beyond the bound: drop
        assert mq.parked == 2
        assert mq.dropped == 1


class TestEgress:
    def test_sweep_forwards_tx_entries(self, setup):
        env, accel, manager = setup
        mq = manager.register(MQueue(env, accel.memory, 8))
        forwarded = []
        manager.on_tx(lambda q, e: forwarded.append((q, e)))

        def accel_send(env):
            from repro.lynx.mqueue import MQueueEntry

            yield mq.push_tx(MQueueEntry(b"resp", 4))
            mq.ring_doorbell()

        env.process(accel_send(env))
        env.run(until=100)
        assert len(forwarded) == 1
        assert manager.sweeps >= 1

    def test_sweep_without_sink_fails(self, setup):
        env, accel, manager = setup
        mq = manager.register(MQueue(env, accel.memory, 8))

        def accel_send(env):
            from repro.lynx.mqueue import MQueueEntry

            yield mq.push_tx(MQueueEntry(b"resp", 4))
            mq.ring_doorbell()

        env.process(accel_send(env))
        with pytest.raises(ConfigError, match="no forwarder"):
            env.run(until=100)

    def test_one_sweep_collects_many_queues(self, setup):
        env, accel, manager = setup
        mqs = [manager.register(MQueue(env, accel.memory, 8,
                                       name="m%d" % i)) for i in range(4)]
        forwarded = []
        manager.on_tx(lambda q, e: forwarded.append(q))

        def accel_send(env):
            from repro.lynx.mqueue import MQueueEntry

            for mq in mqs:
                yield mq.push_tx(MQueueEntry(b"r", 1))
                mq.ring_doorbell()

        env.process(accel_send(env))
        env.run(until=200)
        assert len(forwarded) == 4
        # batched: far fewer sweeps than messages is allowed; at least 1
        assert 1 <= manager.sweeps <= 4


class TestFrameEgress:
    """One-kick sweeps (DESIGN.md §4.14): a multi-entry sweep hands the
    whole batch to the many-forwarder in frame mode, and falls back to
    per-entry forwarding otherwise."""

    def _send_batch(self, env, mqs):
        def accel_send(env):
            from repro.lynx.mqueue import MQueueEntry

            for mq in mqs:
                yield mq.push_tx(MQueueEntry(b"r", 1))
                mq.ring_doorbell()

        env.process(accel_send(env))

    def test_frame_sweep_uses_many_forwarder(self, setup):
        env, accel, manager = setup
        env.frame_exec = True
        mqs = [manager.register(MQueue(env, accel.memory, 8,
                                       name="f%d" % i)) for i in range(3)]
        single, batched = [], []
        manager.on_tx(lambda q, e: single.append(q))
        manager.on_tx_many(lambda pairs: batched.append(list(pairs)))
        self._send_batch(env, mqs)
        env.run(until=200)
        delivered = len(single) + sum(len(b) for b in batched)
        assert delivered == 3
        # At least one sweep collected >1 entry and went through the
        # many-forwarder in a single call.
        assert any(len(b) > 1 for b in batched)

    def test_scalar_mode_ignores_many_forwarder(self, setup):
        env, accel, manager = setup
        env.frame_exec = False
        mqs = [manager.register(MQueue(env, accel.memory, 8,
                                       name="s%d" % i)) for i in range(3)]
        single, batched = [], []
        manager.on_tx(lambda q, e: single.append(q))
        manager.on_tx_many(lambda pairs: batched.append(list(pairs)))
        self._send_batch(env, mqs)
        env.run(until=200)
        assert len(single) == 3
        assert batched == []

    def test_single_entry_sweep_stays_on_scalar_sink(self, setup):
        env, accel, manager = setup
        env.frame_exec = True
        mq = manager.register(MQueue(env, accel.memory, 8, name="solo"))
        single, batched = [], []
        manager.on_tx(lambda q, e: single.append(q))
        manager.on_tx_many(lambda pairs: batched.append(list(pairs)))
        self._send_batch(env, [mq])
        env.run(until=200)
        assert len(single) == 1
        assert batched == []
