"""Arrival processes."""

import pytest

from repro.errors import NetworkError, ConfigError
from repro.net.arrivals import OnOffBurst, Poisson, TraceReplay, Uniform
from repro.sim import RngRegistry


class TestUniform:
    def test_constant_gap(self):
        proc = Uniform(0.5)
        assert [proc.next_gap() for _ in range(3)] == [2.0, 2.0, 2.0]

    def test_rate_validated(self):
        with pytest.raises(ConfigError):
            Uniform(0)


class TestPoisson:
    def test_mean_rate(self):
        proc = Poisson(0.1, RngRegistry(0))
        gaps = [proc.next_gap() for _ in range(4000)]
        assert sum(gaps) / len(gaps) == pytest.approx(10.0, rel=0.1)

    def test_deterministic_given_seed(self):
        a = Poisson(0.1, RngRegistry(1))
        b = Poisson(0.1, RngRegistry(1))
        assert [a.next_gap() for _ in range(5)] == \
               [b.next_gap() for _ in range(5)]


class TestOnOffBurst:
    def test_long_run_rate_matches_formula(self):
        proc = OnOffBurst(1.0, on_mean_us=100.0, off_mean_us=300.0,
                          rng=RngRegistry(2))
        total = sum(proc.next_gap() for _ in range(20000))
        measured = 20000 / total
        assert measured == pytest.approx(proc.mean_rate, rel=0.1)

    def test_burstier_than_poisson(self):
        """Same mean rate, far higher inter-arrival variability (CV^2)."""
        import numpy as np

        burst = OnOffBurst(1.0, 100.0, 300.0, rng=RngRegistry(3))
        pois = Poisson(burst.mean_rate, RngRegistry(3))
        burst_gaps = np.array([burst.next_gap() for _ in range(5000)])
        pois_gaps = np.array([pois.next_gap() for _ in range(5000)])

        def cv2(gaps):
            return gaps.var() / gaps.mean() ** 2

        assert cv2(burst_gaps) > 10 * cv2(pois_gaps)  # Poisson CV^2 == 1

    def test_parameters_validated(self):
        with pytest.raises(ConfigError):
            OnOffBurst(0, 1, 1, RngRegistry(0))


class TestTraceReplay:
    def test_replays_gaps_and_loops(self):
        proc = TraceReplay([0.0, 5.0, 7.0])
        assert [proc.next_gap() for _ in range(4)] == [5.0, 2.0, 5.0, 2.0]

    def test_validation(self):
        with pytest.raises(ConfigError):
            TraceReplay([1.0])
        with pytest.raises(ConfigError):
            TraceReplay([5.0, 1.0])


class TestTraceFromFile:
    def test_npy_round_trip(self, tmp_path):
        import numpy as np

        path = str(tmp_path / "trace.npy")
        np.save(path, np.array([0.0, 5.0, 7.0]))
        proc = TraceReplay.from_file(path)
        assert [proc.next_gap() for _ in range(4)] == [5.0, 2.0, 5.0, 2.0]

    def test_csv_with_header_and_extra_columns(self, tmp_path):
        path = tmp_path / "trace.csv"
        path.write_text("timestamp_us,flow\n0.0,a\n5.0,b\n7.0,a\n")
        proc = TraceReplay.from_file(str(path))
        assert [proc.next_gap() for _ in range(3)] == [5.0, 2.0, 5.0]

    def test_bare_text_one_per_line(self, tmp_path):
        path = tmp_path / "trace.txt"
        path.write_text("1.5\n2.5\n10.0\n")
        proc = TraceReplay.from_file(str(path))
        assert proc.next_gap() == 1.0

    def test_missing_file(self):
        with pytest.raises(ConfigError):
            TraceReplay.from_file("/nonexistent/trace.csv")

    def test_unparsable_row_after_data(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("1.0\n2.0\noops\n")
        with pytest.raises(ConfigError):
            TraceReplay.from_file(str(path))

    def test_too_short(self, tmp_path):
        path = tmp_path / "short.csv"
        path.write_text("header\n1.0\n")
        with pytest.raises(ConfigError):
            TraceReplay.from_file(str(path))

    def test_npy_rejects_2d(self, tmp_path):
        import numpy as np

        path = str(tmp_path / "grid.npy")
        np.save(path, np.zeros((2, 2)))
        with pytest.raises(ConfigError):
            TraceReplay.from_file(path)


class TestGeneratorIntegration:
    def test_open_loop_with_custom_arrivals(self):
        from repro import Testbed
        from repro.net import Address, OpenLoopGenerator

        tb = Testbed()
        client = tb.client("10.0.1.1")
        gen = OpenLoopGenerator(tb.env, client, Address("10.9.9.9", 1),
                                payload_fn=lambda i: b"x",
                                arrivals=Uniform(0.01))
        tb.run(until=10000)
        assert gen.offered == pytest.approx(100, abs=3)

    def test_open_loop_requires_rate_or_arrivals(self):
        from repro import Testbed
        from repro.net import Address, OpenLoopGenerator

        tb = Testbed()
        client = tb.client("10.0.1.1")
        with pytest.raises(NetworkError):
            OpenLoopGenerator(tb.env, client, Address("10.9.9.9", 1),
                              payload_fn=lambda i: b"x")
