"""Load-generator clients (sockperf role)."""

import pytest

from repro.config import XEON_E5_2620, XEON_VMA
from repro.hw.cpu import CorePool
from repro.hw.nic import Nic
from repro.net import (
    Address,
    Client,
    ClosedLoopGenerator,
    Network,
    OpenLoopGenerator,
)
from repro.net.packet import UDP
from repro.net.stack import NetworkStack
from repro.sim import Environment, RngRegistry


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def network(env):
    return Network(env)


class _EchoServer:
    """Minimal in-test UDP echo server on a NIC."""

    def __init__(self, env, network, ip, port, delay=5.0):
        self.nic = Nic(env, network, ip)
        self.delay = delay
        self.env = env
        pool = CorePool(env, XEON_E5_2620, count=4)
        self.stack = NetworkStack(env, pool, XEON_VMA)
        self.stack.listen(port)
        env.process(self._loop())

    def _loop(self):
        while True:
            msg = yield self.nic.recv()
            if self.stack.handle_control(msg, self.nic):
                continue
            yield self.env.timeout(self.delay)
            yield from self.nic.send(
                msg.reply(msg.payload, created_at=self.env.now))


class TestClosedLoop:
    def test_request_response_and_latency(self, env, network):
        _EchoServer(env, network, "10.0.0.1", 7777)
        client = Client(env, network, "10.0.1.1", rng=RngRegistry(0))
        gen = ClosedLoopGenerator(env, client, Address("10.0.0.1", 7777),
                                  concurrency=2, payload_fn=lambda i: b"ping",
                                  proto=UDP)
        env.run(until=1000)
        assert gen.completed > 10
        assert client.latency.count == client.responses.count
        assert client.latency.p50() > 5.0  # at least the server delay

    def test_timeouts_counted_when_server_missing(self, env, network):
        client = Client(env, network, "10.0.1.1", rng=RngRegistry(0))
        gen = ClosedLoopGenerator(env, client, Address("10.9.9.9", 7777),
                                  concurrency=1, payload_fn=lambda i: b"ping",
                                  proto=UDP, timeout=50)
        env.run(until=500)
        assert gen.timeouts >= 5
        assert gen.completed == 0


class TestOpenLoop:
    def test_offered_rate_close_to_target(self, env, network):
        _EchoServer(env, network, "10.0.0.1", 7777, delay=0.0)
        client = Client(env, network, "10.0.1.1", rng=RngRegistry(0))
        gen = OpenLoopGenerator(env, client, Address("10.0.0.1", 7777),
                                rate_per_us=0.05, payload_fn=lambda i: b"p",
                                proto=UDP)
        env.run(until=20000)
        measured = gen.offered / 20000
        assert measured == pytest.approx(0.05, rel=0.15)

    def test_stop_halts_generation(self, env, network):
        _EchoServer(env, network, "10.0.0.1", 7777, delay=0.0)
        client = Client(env, network, "10.0.1.1", rng=RngRegistry(0))
        gen = OpenLoopGenerator(env, client, Address("10.0.0.1", 7777),
                                rate_per_us=0.01, payload_fn=lambda i: b"p",
                                proto=UDP)
        env.run(until=1000)
        gen.stop()
        offered_at_stop = gen.offered
        env.run(until=3000)
        assert gen.offered <= offered_at_stop + 1

    def test_latency_includes_client_processing(self, env, network):
        _EchoServer(env, network, "10.0.0.1", 7777, delay=0.0)
        client = Client(env, network, "10.0.1.1", rng=RngRegistry(0),
                        send_cost=2.0, recv_cost=3.0)
        gen = ClosedLoopGenerator(env, client, Address("10.0.0.1", 7777),
                                  concurrency=1, payload_fn=lambda i: b"p",
                                  proto=UDP)
        env.run(until=500)
        # send_cost elapses in-path; recv_cost is accounted in.
        assert client.latency.min() >= 2.0 + 3.0


class TestClientEdgeCases:
    def test_source_port_wraparound(self, env, network):
        client = Client(env, network, "10.0.1.1", rng=RngRegistry(0))
        client._next_port = 64999
        a1 = client._source_address()
        client._next_port = 65001
        a2 = client._source_address()
        assert a1.port == 65000
        assert a2.port == 40001  # wrapped

    def test_two_connections_are_independent(self, env, network):
        _EchoServer(env, network, "10.0.0.1", 7777, delay=0.0)
        client = Client(env, network, "10.0.1.1", rng=RngRegistry(0))
        conns = []

        def run(env):
            from repro.net.packet import Address

            c1 = yield from client.connect(Address("10.0.0.1", 7777))
            c2 = yield from client.connect(Address("10.0.0.1", 7777))
            conns.extend([c1, c2])

        env.process(run(env))
        env.run(until=5000)
        assert len(conns) == 2
        assert conns[0].conn_id != conns[1].conn_id
        assert conns[0].client.port != conns[1].client.port
        assert all(c.established for c in conns)
