"""Load-generator clients (sockperf role)."""

import pytest

from repro.config import XEON_E5_2620, XEON_VMA
from repro.hw.cpu import CorePool
from repro.hw.nic import Nic
from repro.net import (
    Address,
    Client,
    ClosedLoopGenerator,
    Network,
    OpenLoopGenerator,
)
from repro.net.packet import TCP, UDP
from repro.net.stack import NetworkStack
from repro.sim import Environment, RngRegistry


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def network(env):
    return Network(env)


class _EchoServer:
    """Minimal in-test UDP echo server on a NIC."""

    def __init__(self, env, network, ip, port, delay=5.0):
        self.nic = Nic(env, network, ip)
        self.delay = delay
        self.env = env
        pool = CorePool(env, XEON_E5_2620, count=4)
        self.stack = NetworkStack(env, pool, XEON_VMA)
        self.stack.listen(port)
        env.process(self._loop())

    def _loop(self):
        while True:
            msg = yield self.nic.recv()
            if self.stack.handle_control(msg, self.nic):
                continue
            yield self.env.timeout(self.delay)
            yield from self.nic.send(
                msg.reply(msg.payload, created_at=self.env.now))


class TestClosedLoop:
    def test_request_response_and_latency(self, env, network):
        _EchoServer(env, network, "10.0.0.1", 7777)
        client = Client(env, network, "10.0.1.1", rng=RngRegistry(0))
        gen = ClosedLoopGenerator(env, client, Address("10.0.0.1", 7777),
                                  concurrency=2, payload_fn=lambda i: b"ping",
                                  proto=UDP)
        env.run(until=1000)
        assert gen.completed > 10
        assert client.latency.count == client.responses.count
        assert client.latency.p50() > 5.0  # at least the server delay

    def test_timeouts_counted_when_server_missing(self, env, network):
        client = Client(env, network, "10.0.1.1", rng=RngRegistry(0))
        gen = ClosedLoopGenerator(env, client, Address("10.9.9.9", 7777),
                                  concurrency=1, payload_fn=lambda i: b"ping",
                                  proto=UDP, timeout=50)
        env.run(until=500)
        assert gen.timeouts >= 5
        assert gen.completed == 0


class TestOpenLoop:
    def test_offered_rate_close_to_target(self, env, network):
        _EchoServer(env, network, "10.0.0.1", 7777, delay=0.0)
        client = Client(env, network, "10.0.1.1", rng=RngRegistry(0))
        gen = OpenLoopGenerator(env, client, Address("10.0.0.1", 7777),
                                rate_per_us=0.05, payload_fn=lambda i: b"p",
                                proto=UDP)
        env.run(until=20000)
        measured = gen.offered / 20000
        assert measured == pytest.approx(0.05, rel=0.15)

    def test_stop_halts_generation(self, env, network):
        _EchoServer(env, network, "10.0.0.1", 7777, delay=0.0)
        client = Client(env, network, "10.0.1.1", rng=RngRegistry(0))
        gen = OpenLoopGenerator(env, client, Address("10.0.0.1", 7777),
                                rate_per_us=0.01, payload_fn=lambda i: b"p",
                                proto=UDP)
        env.run(until=1000)
        gen.stop()
        offered_at_stop = gen.offered
        env.run(until=3000)
        assert gen.offered <= offered_at_stop + 1

    def test_latency_includes_client_processing(self, env, network):
        _EchoServer(env, network, "10.0.0.1", 7777, delay=0.0)
        client = Client(env, network, "10.0.1.1", rng=RngRegistry(0),
                        send_cost=2.0, recv_cost=3.0)
        gen = ClosedLoopGenerator(env, client, Address("10.0.0.1", 7777),
                                  concurrency=1, payload_fn=lambda i: b"p",
                                  proto=UDP)
        env.run(until=500)
        # send_cost elapses in-path; recv_cost is accounted in.
        assert client.latency.min() >= 2.0 + 3.0


class _FlakyEchoServer(_EchoServer):
    """Echo server that fails requests until *heal_at*: drops them
    (``fail="drop"``) or answers with an error-kind reply."""

    def __init__(self, env, network, ip, port, heal_at, fail="drop",
                 delay=5.0):
        self.heal_at = heal_at
        self.fail = fail
        super().__init__(env, network, ip, port, delay=delay)

    def _loop(self):
        while True:
            msg = yield self.nic.recv()
            if self.stack.handle_control(msg, self.nic):
                continue
            yield self.env.timeout(self.delay)
            if self.env.now < self.heal_at:
                if self.fail == "drop":
                    continue
                yield from self.nic.send(
                    msg.reply(b"", created_at=self.env.now, size=0,
                              kind="error"))
                continue
            yield from self.nic.send(
                msg.reply(msg.payload, created_at=self.env.now))


class TestWaiterHygiene:
    """Regression for the _waiters leaks: every request path — success
    with and without a timeout, timed-out, error-response, and the TCP
    handshake — must leave the waiter table empty once quiesced."""

    def _assert_clean_after(self, env, network, server_kw, gen_kw,
                            until=4000):
        _EchoServer(env, network, "10.0.0.1", 7777, **server_kw)
        client = Client(env, network, "10.0.1.1", rng=RngRegistry(0))
        gen = ClosedLoopGenerator(env, client, Address("10.0.0.1", 7777),
                                  concurrency=2,
                                  payload_fn=lambda i: b"ping", **gen_kw)
        env.run(until=until)
        gen.stop()
        env.run(until=until + 2000)
        assert gen.completed > 0
        assert client._waiters == {}
        return client, gen

    def test_success_without_timeout(self, env, network):
        self._assert_clean_after(env, network, {}, {"proto": UDP})

    def test_success_with_timeout(self, env, network):
        # The leak this PR fixes: a response beating its timeout used to
        # leave the expired entry in _waiters forever.
        client, gen = self._assert_clean_after(
            env, network, {}, {"proto": UDP, "timeout": 1000})
        assert gen.timeouts == 0

    def test_tcp_handshake_entries_cleaned(self, env, network):
        self._assert_clean_after(env, network, {}, {"proto": TCP})

    def test_mixed_timeouts_and_successes(self, env, network):
        # Server drops everything before t=1500: early requests time
        # out, later ones succeed; both paths must clean up.
        _FlakyEchoServer(env, network, "10.0.0.1", 7777, heal_at=1500)
        client = Client(env, network, "10.0.1.1", rng=RngRegistry(0))
        gen = ClosedLoopGenerator(env, client, Address("10.0.0.1", 7777),
                                  concurrency=2,
                                  payload_fn=lambda i: b"ping", proto=UDP,
                                  timeout=200)
        env.run(until=4000)
        gen.stop()
        env.run(until=6000)
        assert gen.timeouts > 0 and gen.completed > 0
        assert client._waiters == {}


class TestRetries:
    def test_retries_recover_dropped_requests(self, env, network):
        _FlakyEchoServer(env, network, "10.0.0.1", 7777, heal_at=300)
        client = Client(env, network, "10.0.1.1", rng=RngRegistry(0))
        results = []

        def one(env):
            response = yield from client.request(
                b"ping", Address("10.0.0.1", 7777), proto=UDP,
                timeout=150, retries=5, retry_backoff=100.0)
            results.append(response)

        env.process(one(env))
        env.run(until=5000)
        assert results and results[0] is not None
        assert results[0].kind == "response"
        assert client.retries > 0

    def test_error_responses_trigger_retry(self, env, network):
        _FlakyEchoServer(env, network, "10.0.0.1", 7777, heal_at=300,
                         fail="error")
        client = Client(env, network, "10.0.1.1", rng=RngRegistry(0))
        gen = ClosedLoopGenerator(env, client, Address("10.0.0.1", 7777),
                                  concurrency=1,
                                  payload_fn=lambda i: b"ping", proto=UDP,
                                  timeout=500, retries=4,
                                  retry_backoff=100.0)
        env.run(until=4000)
        assert client.retries > 0
        assert gen.errors == 0          # retries absorbed every error
        assert gen.completed > 0

    def test_exhausted_retries_surface_the_failure(self, env, network):
        client = Client(env, network, "10.0.1.1", rng=RngRegistry(0))
        gen = ClosedLoopGenerator(env, client, Address("10.9.9.9", 7777),
                                  concurrency=1,
                                  payload_fn=lambda i: b"ping", proto=UDP,
                                  timeout=50, retries=2, retry_backoff=50.0)
        env.run(until=2000)
        assert gen.timeouts > 0
        assert client.retries >= 2 * gen.timeouts
        assert client._waiters == {}

    def test_zero_retries_is_event_identical_to_before(self, env, network):
        # retries=0 must consume the exact schedule slots of the old
        # single-shot path: pin via the kernel's event-id sequence.
        def run_once(retries_kw):
            env2 = Environment()
            net2 = Network(env2)
            _EchoServer(env2, net2, "10.0.0.1", 7777)
            client = Client(env2, net2, "10.0.1.1", rng=RngRegistry(0))
            gen = ClosedLoopGenerator(env2, client,
                                      Address("10.0.0.1", 7777),
                                      concurrency=2,
                                      payload_fn=lambda i: b"ping",
                                      proto=UDP, timeout=500, **retries_kw)
            env2.run(until=3000)
            return env2._eid, tuple(client.latency._samples), gen.completed

        assert run_once({}) == run_once({"retries": 0})

    def test_retries_without_timeout_get_a_default_deadline(self, env,
                                                            network):
        # Regression: retries>0 with no explicit timeout used to park
        # the waiter forever on the first dropped request — no deadline
        # ever fired, so the retry budget was unreachable.
        _FlakyEchoServer(env, network, "10.0.0.1", 7777, heal_at=500)
        client = Client(env, network, "10.0.1.1", rng=RngRegistry(0))
        results = []

        def one(env):
            response = yield from client.request(
                b"ping", Address("10.0.0.1", 7777), proto=UDP,
                retries=5, retry_backoff=150.0)
            results.append(response)

        env.process(one(env))
        env.run(until=8000)
        assert results and results[0] is not None
        assert results[0].kind == "response"
        assert client.retries > 0
        assert client._waiters == {}

    def test_no_retries_no_timeout_still_waits_indefinitely(self, env,
                                                            network):
        # The default deadline is scoped to retrying requests only: a
        # bare request keeps the historical wait-forever semantics.
        client = Client(env, network, "10.0.1.1", rng=RngRegistry(0))
        results = []

        def one(env):
            response = yield from client.request(
                b"ping", Address("10.9.9.9", 7777), proto=UDP)
            results.append(response)

        env.process(one(env))
        env.run(until=5000)
        assert results == []
        assert len(client._waiters) == 1

    def test_retry_backoff_is_seeded_deterministic(self, env, network):
        def run_once():
            env2 = Environment()
            net2 = Network(env2)
            _FlakyEchoServer(env2, net2, "10.0.0.1", 7777, heal_at=800)
            client = Client(env2, net2, "10.0.1.1", rng=RngRegistry(9))
            gen = ClosedLoopGenerator(env2, client,
                                      Address("10.0.0.1", 7777),
                                      concurrency=2,
                                      payload_fn=lambda i: b"ping",
                                      proto=UDP, timeout=150, retries=4,
                                      retry_backoff=120.0)
            env2.run(until=4000)
            return (env2._eid, client.retries,
                    tuple(client.latency._samples))

        assert run_once() == run_once()


class TestClientEdgeCases:
    def test_source_port_wraparound(self, env, network):
        client = Client(env, network, "10.0.1.1", rng=RngRegistry(0))
        client._next_port = 64999
        a1 = client._source_address()
        client._next_port = 65001
        a2 = client._source_address()
        assert a1.port == 65000
        assert a2.port == 40001  # wrapped

    def test_two_connections_are_independent(self, env, network):
        _EchoServer(env, network, "10.0.0.1", 7777, delay=0.0)
        client = Client(env, network, "10.0.1.1", rng=RngRegistry(0))
        conns = []

        def run(env):
            from repro.net.packet import Address

            c1 = yield from client.connect(Address("10.0.0.1", 7777))
            c2 = yield from client.connect(Address("10.0.0.1", 7777))
            conns.extend([c1, c2])

        env.process(run(env))
        env.run(until=5000)
        assert len(conns) == 2
        assert conns[0].conn_id != conns[1].conn_id
        assert conns[0].client.port != conns[1].client.port
        assert all(c.established for c in conns)
