"""Cluster tier: consistent-hash ring, shard preload, and the SmartNIC
L4 VIP's steering policies (DESIGN.md §4.15)."""

import pytest

from repro.apps.memcached import (
    KeyValueStore,
    encode_delete,
    encode_get,
    encode_set,
    encode_stats,
)
from repro.errors import ConfigError
from repro.net import MultiRackNetwork, Network
from repro.net.cluster import (
    ConsistentHashRing,
    L4LoadBalancer,
    STEER_POLICIES,
    extract_key,
    shard_preload,
)
from repro.net.packet import Address, Message
from repro.sim import Environment, RngRegistry, Store


VIP = "10.0.0.100"
PORT = 11211


class _Port:
    def __init__(self, env, capacity=float("inf")):
        self.rx = Store(env, capacity=capacity)


@pytest.fixture
def env():
    return Environment()


def _keys(n):
    return [b"user-%03d" % i for i in range(n)]


class TestExtractKey:
    def test_get_and_delete(self):
        assert extract_key(encode_get(b"alpha")) == b"alpha"
        assert extract_key(encode_delete(b"beta")) == b"beta"

    def test_set_stops_at_the_value_separator(self):
        assert extract_key(encode_set(b"gamma", b"v\x00v")) == b"gamma"

    def test_non_conforming_payloads_are_keyless(self):
        assert extract_key(encode_stats()) is None
        assert extract_key(b"raw tensor bytes") is None
        assert extract_key(("not", "bytes")) is None

    def test_memoryview_accepted(self):
        assert extract_key(memoryview(encode_get(b"mv"))) == b"mv"


class TestConsistentHashRing:
    def test_duplicate_add_rejected(self):
        ring = ConsistentHashRing(["a"])
        with pytest.raises(ConfigError):
            ring.add("a")

    def test_remove_unknown_rejected(self):
        with pytest.raises(ConfigError):
            ConsistentHashRing(["a"]).remove("b")

    def test_needs_at_least_one_vnode(self):
        with pytest.raises(ConfigError):
            ConsistentHashRing(vnodes=0)

    def test_membership_surface(self):
        ring = ConsistentHashRing(["a", "b"])
        assert "a" in ring and "c" not in ring
        assert len(ring) == 2
        assert ring.nodes == ("a", "b")

    def test_empty_ring_owns_nothing(self):
        ring = ConsistentHashRing()
        assert ring.lookup(b"k") == []
        assert ring.owner(b"k") is None

    def test_lookup_returns_distinct_owners(self):
        ring = ConsistentHashRing(["a", "b", "c"])
        for key in _keys(32):
            owners = ring.lookup(key, 2)
            assert len(owners) == 2
            assert len(set(owners)) == 2
        # asking for more than the ring holds returns every node once
        assert sorted(ring.lookup(b"k", 10)) == ["a", "b", "c"]

    def test_mapping_independent_of_insertion_order(self):
        one = ConsistentHashRing(["a", "b", "c"])
        other = ConsistentHashRing(["c", "a", "b"])
        for key in _keys(64):
            assert one.lookup(key, 2) == other.lookup(key, 2)

    def test_removal_only_moves_the_removed_nodes_keys(self):
        # The consistent-hashing contract: dropping one node rehomes
        # only the keys it owned; everything else keeps its owner.
        ring = ConsistentHashRing(["a", "b", "c"])
        before = {key: ring.owner(key) for key in _keys(64)}
        ring.remove("c")
        for key, owner in before.items():
            if owner != "c":
                assert ring.owner(key) == owner

    def test_alive_predicate_matches_physical_removal(self):
        # Skipping dead nodes at lookup time is the zero-coordination
        # rebalance: it must agree with actually removing the node.
        full = ConsistentHashRing(["a", "b", "c"])
        shrunk = ConsistentHashRing(["a", "b", "c"])
        shrunk.remove("b")
        alive = lambda node: node != "b"
        for key in _keys(64):
            assert full.owner(key, alive=alive) == shrunk.owner(key)
            assert full.lookup(key, 2, alive=alive) == shrunk.lookup(key, 2)

    def test_string_and_byte_keys_hash_identically(self):
        ring = ConsistentHashRing(["a", "b", "c"])
        assert ring.owner("user-001") == ring.owner(b"user-001")


class TestShardPreload:
    def test_each_key_lands_on_its_replica_set(self):
        nodes = ["n0", "n1", "n2", "n3"]
        ring = ConsistentHashRing(nodes)
        stores = {node: KeyValueStore() for node in nodes}
        items = [(key, b"v" + key) for key in _keys(24)]
        counts = shard_preload(ring, stores, items, replication=2)
        assert sum(counts.values()) == 24 * 2
        for key, value in items:
            owners = ring.lookup(key, 2)
            for node in nodes:
                hit = stores[node].execute(encode_get(key))
                if node in owners:
                    assert hit == value
                else:
                    assert hit == b""


def _cluster(env, policy="round_robin", backends=3, rng=None, ring=None,
             replication=None, depths=None, network=None, **lb_kw):
    """A VIP plus *backends* passive ports on a fresh fabric."""
    net = network if network is not None else Network(env)
    lb = L4LoadBalancer(env, net, VIP, port=PORT, policy=policy, rng=rng,
                        ring=ring, replication=replication, steer_cost=0.1,
                        **lb_kw)
    ports = []
    for i in range(backends):
        ip = "10.0.0.%d" % (i + 1)
        port = _Port(env)
        net.attach(ip, port)
        depth = (depths[i] if depths is not None
                 else (lambda p=port: len(p.rx._items)))
        lb.add_backend(Address(ip, PORT), depth=depth)
        ports.append(port)
    return net, lb, ports


def _offer(net, payloads):
    for i, payload in enumerate(payloads):
        net.deliver(Message(Address("10.0.9.9", 1000 + i),
                            Address(VIP, PORT), payload))


class TestLoadBalancerConstruction:
    def test_unknown_policy_rejected(self, env):
        with pytest.raises(ConfigError):
            L4LoadBalancer(env, Network(env), VIP, policy="random")

    def test_p2c_needs_an_rng(self, env):
        with pytest.raises(ConfigError):
            L4LoadBalancer(env, Network(env), VIP, policy="p2c")

    def test_duplicate_backend_rejected(self, env):
        _net, lb, _ports = _cluster(env, backends=1)
        with pytest.raises(ConfigError):
            lb.add_backend(Address("10.0.0.1", PORT))

    def test_policy_list_is_closed(self):
        assert STEER_POLICIES == ("round_robin", "least_loaded", "p2c")


class TestSteering:
    def test_round_robin_rotates_evenly(self, env):
        net, lb, ports = _cluster(env, policy="round_robin")
        _offer(net, [b"keyless"] * 6)
        env.run()
        assert lb.steered == 6
        assert list(lb.backend_counts().values()) == [2, 2, 2]
        assert all(len(p.rx._items) == 2 for p in ports)

    def test_least_loaded_picks_the_shallowest_queue(self, env):
        depths = [lambda: 2, lambda: 0, lambda: 1]
        net, lb, ports = _cluster(env, policy="least_loaded", depths=depths)
        _offer(net, [b"keyless"] * 5)
        env.run()
        assert lb.backend_counts()["10.0.0.2"] == 5
        assert len(ports[1].rx._items) == 5

    def test_p2c_prefers_the_shallow_backend(self, env):
        depths = [lambda: 10, lambda: 0, lambda: 10]
        net, lb, _ports = _cluster(env, policy="p2c", depths=depths,
                                   rng=RngRegistry(7))
        _offer(net, [b"keyless"] * 60)
        env.run()
        counts = lb.backend_counts()
        assert counts["10.0.0.2"] > counts["10.0.0.1"]
        assert counts["10.0.0.2"] > counts["10.0.0.3"]

    def test_p2c_is_seed_deterministic(self, env):
        def once():
            env2 = Environment()
            net, lb, _ports = _cluster(env2, policy="p2c",
                                       rng=RngRegistry(7))
            _offer(net, [b"keyless"] * 40)
            env2.run()
            return lb.backend_counts()

        assert once() == once()

    def test_dsr_rewrites_destination_in_place(self, env):
        net, lb, ports = _cluster(env, backends=1)
        msg = Message(Address("10.0.9.9", 1000), Address(VIP, PORT),
                      encode_get(b"k"))
        msg_id = msg.msg_id
        net.deliver(msg)
        env.run()
        landed = ports[0].rx.try_get()
        assert landed is msg                     # forwarded, not copied
        assert landed.msg_id == msg_id           # in-flight table keys on it
        assert landed.dst == Address("10.0.0.1", PORT)
        assert landed.src == Address("10.0.9.9", 1000)  # reply goes DSR

    def test_no_backends_counts_unrouted(self, env):
        net, lb, _ports = _cluster(env, backends=0)
        _offer(net, [b"keyless"] * 3)
        env.run()
        assert lb.unrouted == 3
        assert lb.steered == 0


class TestRingSteering:
    def test_single_replica_follows_the_ring_owner(self, env):
        ips = ["10.0.0.1", "10.0.0.2", "10.0.0.3"]
        ring = ConsistentHashRing(ips)
        net, lb, ports = _cluster(env, ring=ring, replication=1)
        keys = _keys(12)
        _offer(net, [encode_get(key) for key in keys])
        env.run()
        by_ip = dict(zip(ips, ports))
        for key in keys:
            owner = ring.owner(key)
            landed = [bytes(m.payload)[5:] for m in by_ip[owner].rx._items]
            assert key in landed

    def test_replica_set_bounds_the_choice(self, env):
        ips = ["10.0.0.1", "10.0.0.2", "10.0.0.3"]
        ring = ConsistentHashRing(ips)
        net, lb, _ports = _cluster(env, policy="round_robin", ring=ring,
                                   replication=2)
        key = _keys(1)[0]
        _offer(net, [encode_get(key)] * 10)
        env.run()
        counts = lb.backend_counts()
        replicas = set(ring.lookup(key, 2))
        for ip in ips:
            if ip in replicas:
                assert counts[ip] > 0
            else:
                assert counts[ip] == 0


class TestHealthChecks:
    def test_dead_rack_backends_are_skipped(self, env):
        network = MultiRackNetwork(env, racks=2)
        network.place(VIP, 0)
        network.place("10.0.0.1", 0)
        network.place("10.0.0.2", 1)
        net, lb, ports = _cluster(env, policy="round_robin", backends=2,
                                  network=network)
        network.fail_rack(1)
        _offer(net, [b"keyless"] * 4)
        env.run()
        counts = lb.backend_counts()
        assert counts["10.0.0.1"] == 4
        assert counts["10.0.0.2"] == 0
        assert len(ports[0].rx._items) == 4

    def test_ring_rehomes_a_dead_racks_shards(self, env):
        network = MultiRackNetwork(env, racks=2)
        network.place(VIP, 0)
        ips = ["10.0.0.1", "10.0.0.2"]
        network.place(ips[0], 0)
        network.place(ips[1], 1)
        ring = ConsistentHashRing(ips)
        net, lb, ports = _cluster(env, ring=ring, replication=1, backends=2,
                                  network=network)
        # pick a key whose primary owner lives in rack 1, then kill it
        key = next(k for k in _keys(32) if ring.owner(k) == ips[1])
        network.fail_rack(1)
        _offer(net, [encode_get(key)] * 3)
        env.run()
        assert lb.backend_counts()[ips[0]] == 3
        assert lb.unrouted == 0


class TestVipSaturation:
    def test_rx_ring_drop_tail_under_overload(self, env):
        # Scalar drain + a huge steer cost: the bounded VIP RX ring
        # overflows and the VIP's wire channel counts the drop-tail.
        net = Network(env)
        lb = L4LoadBalancer(env, net, VIP, policy="round_robin",
                            steer_cost=50.0, rx_ring=2, batched=False)
        port = _Port(env)
        net.attach("10.0.0.1", port)
        lb.add_backend(Address("10.0.0.1", PORT))
        _offer(net, [b"keyless"] * 10)
        env.run()
        wire = net.wire_channel(VIP)
        assert wire.dropped == 7      # 1 draining + 2 buffered survive
        assert wire.delivered + wire.dropped == 10
        assert lb.steered == 3
