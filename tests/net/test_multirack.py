"""Multi-rack fabric (ToRs + spine) behaviour: routing, fault domains,
hop accounting, and the no-route pull counter (DESIGN.md §4.15)."""

import pytest

from repro import telemetry
from repro.errors import NetworkError
from repro.experiments import sweep
from repro.net import MultiRackNetwork
from repro.net.packet import Address, Message
from repro.sim import Environment, Store


class _Port:
    def __init__(self, env, capacity=float("inf")):
        self.rx = Store(env, capacity=capacity)


@pytest.fixture
def env():
    return Environment()


def _msg(src_ip, dst_ip):
    return Message(Address(src_ip, 1), Address(dst_ip, 2), b"x")


# --------------------------------------------------------------------------
# module-level point builder (sweep Points must be picklable): a tiny
# fabric whose only traffic is *drops*, for the merge regression below
# --------------------------------------------------------------------------


def no_route_point(seed, drops=1):
    env = Environment()
    network = MultiRackNetwork(env, racks=2)
    network.attach("10.0.0.1", _Port(env))
    for _ in range(drops):
        network.deliver(_msg("10.0.0.1", "10.9.9.9"))
    network.deliver(_msg("10.0.0.1", "10.0.0.1"))
    env.run()
    assert network.dropped_no_route == drops
    return drops


class TestConstruction:
    def test_needs_at_least_one_rack(self, env):
        with pytest.raises(NetworkError):
            MultiRackNetwork(env, racks=0)

    def test_oversubscription_below_one_rejected(self, env):
        with pytest.raises(NetworkError):
            MultiRackNetwork(env, oversubscription=0.5)

    def test_oversubscription_shrinks_the_spine_queue(self, env):
        fat = MultiRackNetwork(env, spine_queue=512)
        assert fat.spine_queue == 512
        thin = MultiRackNetwork(Environment(), spine_queue=512,
                                oversubscription=4.0)
        assert thin.spine_queue == 128


class TestPlacement:
    def test_place_validates_rack_range(self, env):
        network = MultiRackNetwork(env, racks=2)
        with pytest.raises(NetworkError):
            network.place("10.0.0.1", 2)
        with pytest.raises(NetworkError):
            network.place("10.0.0.1", -1)

    def test_unplaced_ips_default_to_rack_zero(self, env):
        network = MultiRackNetwork(env, racks=2)
        assert network.rack_of("10.9.9.9") == 0

    def test_rack_members(self, env):
        network = MultiRackNetwork(env, racks=2)
        for ip, rack in (("10.0.0.1", 0), ("10.0.1.1", 1), ("10.0.1.2", 1)):
            network.attach(ip, _Port(env))
            network.place(ip, rack)
        assert network.rack_members(0) == ["10.0.0.1"]
        assert sorted(network.rack_members(1)) == ["10.0.1.1", "10.0.1.2"]


class TestRouting:
    def _fabric(self, env, **kw):
        network = MultiRackNetwork(env, racks=2, **kw)
        a, b = _Port(env), _Port(env)
        network.attach("10.0.0.1", a)
        network.place("10.0.0.1", 0)
        network.attach("10.0.1.1", b)
        network.place("10.0.1.1", 1)
        return network, a, b

    def test_intra_rack_latency_matches_single_switch(self, env):
        network, a, _b = self._fabric(env)
        msg = _msg("10.0.0.9", "10.0.0.1")
        network.deliver(msg)
        env.run()
        assert env.now == pytest.approx(network.one_way_latency)
        assert a.rx.try_get() is msg

    def test_cross_rack_adds_two_spine_hops(self, env):
        network, _a, b = self._fabric(env)
        msg = _msg("10.0.0.1", "10.0.1.1")
        network.deliver(msg)
        env.run()
        assert env.now == pytest.approx(network.one_way_latency
                                        + 2 * network.spine_latency)
        assert b.rx.try_get() is msg
        assert network.uplink(0).delivered == 1
        assert network.downlink(1).delivered == 1

    def test_inject_channel_same_rack_is_the_wire(self, env):
        network, _a, _b = self._fabric(env)
        assert (network.inject_channel("10.0.0.9", "10.0.0.1")
                is network.wire_channel("10.0.0.1"))

    def test_inject_channel_cross_rack_is_the_source_uplink(self, env):
        network, _a, _b = self._fabric(env)
        network.place("10.0.1.9", 1)
        assert (network.inject_channel("10.0.1.9", "10.0.0.1")
                is network.uplink(1))

    def test_inject_channel_unknown_destination_raises(self, env):
        network, _a, _b = self._fabric(env)
        with pytest.raises(NetworkError):
            network.inject_channel("10.0.0.1", "10.9.9.9")

    def test_spine_queue_drop_tail_on_the_uplink(self, env):
        network, _a, b = self._fabric(env, spine_queue=2)
        for _ in range(8):
            network.deliver(_msg("10.0.0.1", "10.0.1.1"))
        env.run()
        assert len(b.rx._items) == 2
        assert network.uplink(0).dropped == 6
        assert network.counters.get("dropped_spine") == 6


class TestFaultDomains:
    def _fabric(self, env):
        network = MultiRackNetwork(env, racks=2)
        b = _Port(env)
        network.attach("10.0.1.1", b)
        network.place("10.0.1.1", 1)
        return network, b

    def test_fail_rack_validates_range(self, env):
        network, _b = self._fabric(env)
        with pytest.raises(NetworkError):
            network.fail_rack(5)

    def test_is_up_tracks_the_rack_state(self, env):
        network, _b = self._fabric(env)
        assert network.rack_is_up(1) and network.is_up("10.0.1.1")
        network.fail_rack(1)
        assert not network.rack_is_up(1)
        assert not network.is_up("10.0.1.1")
        assert network.is_up("10.0.0.9")  # rack 0 untouched

    def test_dead_rack_drops_at_the_routing_stage(self, env):
        network, b = self._fabric(env)
        network.fail_rack(1)
        for _ in range(3):
            network.deliver(_msg("10.0.0.9", "10.0.1.1"))
        env.run()
        assert network.dropped_rack_down == 3
        assert len(b.rx._items) == 0

    def test_restore_rack_resumes_delivery(self, env):
        network, b = self._fabric(env)
        network.fail_rack(1)
        network.deliver(_msg("10.0.0.9", "10.0.1.1"))
        env.run()
        network.restore_rack(1)
        network.deliver(_msg("10.0.0.9", "10.0.1.1"))
        env.run()
        assert network.dropped_rack_down == 1
        assert len(b.rx._items) == 1

    def test_uplink_fences_injected_frames_from_a_dead_rack(self, env):
        # The population plane bypasses deliver() via inject_channel;
        # the uplink sink must still fence a partitioned source rack.
        network, _b = self._fabric(env)
        a = _Port(env)
        network.attach("10.0.0.1", a)
        network.place("10.0.1.9", 1)
        uplink = network.inject_channel("10.0.1.9", "10.0.0.1")
        network.fail_rack(1)
        msg = _msg("10.0.1.9", "10.0.0.1")
        uplink.push(msg, nbytes=msg.wire_size)
        env.run()
        assert uplink.dropped == 1
        assert len(a.rx._items) == 0


class TestConservation:
    def test_every_hop_counter_sums_to_offered(self, env):
        """offered == delivered + rx-ring + spine + no-route + rack-down,
        with every drop class exercised at once."""
        network = MultiRackNetwork(env, racks=2, spine_queue=2)
        a = _Port(env, capacity=4)
        b = _Port(env, capacity=4)
        network.attach("10.0.0.1", a)
        network.place("10.0.0.1", 0)
        network.attach("10.0.1.1", b)
        network.place("10.0.1.1", 1)
        offered = 0
        for _ in range(8):     # cross-rack burst: 6 die at the spine
            network.deliver(_msg("10.0.0.1", "10.0.1.1"))
            offered += 1
        for _ in range(6):     # intra-rack burst: 2 die at the RX ring
            network.deliver(_msg("10.0.0.9", "10.0.0.1"))
            offered += 1
        for _ in range(2):     # unknown destination
            network.deliver(_msg("10.0.0.1", "10.9.9.9"))
            offered += 1
        env.run()
        network.fail_rack(1)
        for _ in range(3):     # routed into a dead rack
            network.deliver(_msg("10.0.0.9", "10.0.1.1"))
            offered += 1
        env.run()
        counters = network.counters
        assert counters.get("dropped_spine") == 6
        assert counters.get("dropped_rx_ring") == 2
        assert counters.get("dropped_no_route") == 2
        assert counters.get("dropped_rack_down") == 3
        counted = sum(counters.get(key) for key in
                      ("delivered", "dropped_rx_ring", "dropped_no_route",
                       "dropped_rack_down", "dropped_spine"))
        assert counted == offered

    def test_mid_flight_rack_kill_counts_at_the_refusing_hop(self, env):
        # Frames already on the spine when the rack dies are refused at
        # the downlink (counted there), while newly routed frames count
        # rack-down — disjoint classes, so the sum still conserves.
        network = MultiRackNetwork(env, racks=2)
        b = _Port(env)
        network.attach("10.0.1.1", b)
        network.place("10.0.1.1", 1)
        for _ in range(5):
            network.deliver(_msg("10.0.0.9", "10.0.1.1"))
        env.run(until=0.7)     # in flight on the downlink hop
        network.fail_rack(1)
        for _ in range(3):
            network.deliver(_msg("10.0.0.9", "10.0.1.1"))
        env.run()
        assert network.downlink(1).dropped == 5
        assert network.dropped_rack_down == 3
        assert network.counters.get("delivered") == 0
        counted = sum(network.counters.get(key) for key in
                      ("delivered", "dropped_rx_ring", "dropped_no_route",
                       "dropped_rack_down", "dropped_spine"))
        assert counted == 8


class TestTelemetry:
    def test_per_hop_pull_counters_registered(self, env):
        with telemetry.scope() as reg:
            network = MultiRackNetwork(env, racks=2)
            b = _Port(env)
            network.attach("10.0.1.1", b)
            network.place("10.0.1.1", 1)
            network.deliver(_msg("10.0.0.9", "10.0.1.1"))
            env.run()
            snap = reg.snapshot()
        assert snap["net.fabric.tor0.up.delivered"]["value"] == 1
        assert snap["net.fabric.tor1.down.delivered"]["value"] == 1
        assert snap["net.fabric.tor0.up.drops"]["value"] == 0
        assert snap["net.fabric.dropped_rack_down"]["value"] == 0
        assert snap["net.fabric.dropped_no_route"]["value"] == 0


class TestNoRoutePullCounter:
    """Regression: ``Network.dropped_no_route`` was a bare attribute, so
    its drops silently vanished from merged ``--jobs N`` snapshots."""

    def _points(self):
        return [sweep.Point(("no-route", i), no_route_point,
                            dict(drops=i + 1))
                for i in range(4)]

    def test_counter_survives_parallel_worker_merge(self):
        expected = 1 + 2 + 3 + 4
        for jobs in (1, 4):
            with telemetry.scope() as reg:
                sweep.run_points(self._points(), jobs=jobs)
                snap = reg.snapshot()
            assert snap["net.fabric.dropped_no_route"]["value"] == expected, \
                "no-route drops lost at jobs=%d" % jobs
