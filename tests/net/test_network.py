"""Network fabric (switch + wire) behaviour."""

import pytest

from repro.errors import NetworkError
from repro.net import Network
from repro.net.packet import Address, Message
from repro.sim import Environment, Store


class _Port:
    def __init__(self, env, capacity=float("inf")):
        self.rx = Store(env, capacity=capacity)


@pytest.fixture
def env():
    return Environment()


class TestAttachment:
    def test_duplicate_ip_rejected(self, env):
        network = Network(env)
        network.attach("10.0.0.1", _Port(env))
        with pytest.raises(NetworkError):
            network.attach("10.0.0.1", _Port(env))

    def test_unknown_endpoint_lookup(self, env):
        with pytest.raises(NetworkError):
            Network(env).endpoint("10.9.9.9")


class TestDelivery:
    def test_one_way_latency(self, env):
        network = Network(env, wire_latency=0.4, switch_latency=0.5)
        port = _Port(env)
        network.attach("10.0.0.2", port)
        msg = Message(Address("10.0.0.1", 1), Address("10.0.0.2", 2), b"x")
        network.deliver(msg)
        env.run()
        assert env.now == pytest.approx(2 * 0.4 + 0.5)
        assert port.rx.try_get() is msg

    def test_counters(self, env):
        network = Network(env)
        port = _Port(env, capacity=1)
        network.attach("10.0.0.2", port)
        dst = Address("10.0.0.2", 2)
        for _ in range(3):
            network.deliver(Message(Address("a", 1), dst, b"x"))
        network.deliver(Message(Address("a", 1), Address("10.9.9.9", 2),
                                b"x"))
        env.run()
        assert network.counters.get("delivered") == 1
        assert network.counters.get("dropped_rx_ring") == 2
        assert network.counters.get("dropped_no_route") == 1

    def test_conservation(self, env):
        """offered == delivered + dropped_rx_ring + dropped_no_route."""
        network = Network(env)
        port = _Port(env, capacity=5)
        network.attach("10.0.0.2", port)
        offered = 12
        for i in range(offered):
            ip = "10.0.0.2" if i % 3 else "10.9.9.9"
            network.deliver(Message(Address("a", 1), Address(ip, 2), b"x"))
        env.run()
        counted = (network.counters.get("delivered")
                   + network.counters.get("dropped_rx_ring")
                   + network.counters.get("dropped_no_route"))
        assert counted == offered
