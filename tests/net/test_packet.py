"""Messages and addressing."""

import numpy as np
import pytest

from repro.errors import NetworkError
from repro.net.packet import (
    Address,
    Message,
    TCP,
    TCP_HEADER,
    UDP,
    UDP_HEADER,
    payload_size,
)


class TestAddress:
    def test_equality_and_hash(self):
        a = Address("10.0.0.1", 80)
        b = Address("10.0.0.1", 80)
        c = Address("10.0.0.1", 81)
        assert a == b and hash(a) == hash(b)
        assert a != c

    def test_port_validation(self):
        with pytest.raises(NetworkError):
            Address("10.0.0.1", 0)
        with pytest.raises(NetworkError):
            Address("10.0.0.1", 70000)

    def test_repr(self):
        assert repr(Address("1.2.3.4", 99)) == "1.2.3.4:99"


class TestPayloadSize:
    def test_bytes(self):
        assert payload_size(b"abcd") == 4

    def test_numpy(self):
        assert payload_size(np.zeros(10, dtype=np.int32)) == 40

    def test_none(self):
        assert payload_size(None) == 0

    def test_str(self):
        assert payload_size("hello") == 5


class TestMessage:
    def _msg(self, proto=UDP, payload=b"x" * 10):
        return Message(Address("10.0.0.1", 1234), Address("10.0.0.2", 80),
                       payload, proto=proto, created_at=5.0)

    def test_wire_size_includes_headers(self):
        assert self._msg(UDP).wire_size == 10 + UDP_HEADER
        assert self._msg(TCP).wire_size == 10 + TCP_HEADER

    def test_ids_are_unique(self):
        assert self._msg().msg_id != self._msg().msg_id

    def test_reply_swaps_addresses_and_links_request(self):
        req = self._msg()
        resp = req.reply(b"ok", created_at=9.0)
        assert resp.src == req.dst and resp.dst == req.src
        assert resp.kind == "response"
        assert resp.meta["in_reply_to"] == req.msg_id
        assert resp.meta["request_created_at"] == 5.0
        assert resp.proto == req.proto

    def test_explicit_size_override(self):
        msg = Message(Address("a", 1), Address("b", 2), b"xx", size=1000)
        assert msg.size == 1000
