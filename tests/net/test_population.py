"""The flyweight population traffic plane (DESIGN.md §4.13)."""

import json
import math

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.net import (
    BModelPopulation,
    ClientPopulation,
    DiurnalPopulation,
    Flow,
    InFlightTable,
    OnOffPopulation,
    PayloadPool,
    PoissonPopulation,
    TracePopulation,
    TraceReplay,
    arrival_factory,
)
from repro.sim import RngRegistry, configure_backend


def _take_all(source, until, step=1000.0):
    """Consume windows up to *until*; returns one concatenated array."""
    parts = []
    t = 0.0
    while t < until:
        parts.append(source.take(t, min(t + step, until)))
        t += step
    return np.concatenate(parts) if parts else np.empty(0)


class TestPoissonPopulation:
    def test_mean_rate_and_ordering(self):
        src = PoissonPopulation(0.5, RngRegistry(1).stream("p"))
        times = _take_all(src, 40000.0)
        assert times.size == pytest.approx(20000, rel=0.05)
        assert (np.diff(times) >= 0).all()
        assert times.min() >= 0.0 and times.max() < 40000.0

    def test_windows_partition_cleanly(self):
        # The same seed consumed through different window widths is a
        # different draw sequence, but each window's times stay inside
        # its own [start, until) — no duplicates or leaks at the seams.
        src = PoissonPopulation(0.2, RngRegistry(2).stream("p"))
        a = src.take(0.0, 100.0)
        b = src.take(100.0, 230.0)
        assert (a < 100.0).all() and (a >= 0.0).all()
        assert (b >= 100.0).all() and (b < 230.0).all()

    def test_validates_rate(self):
        with pytest.raises(ConfigError):
            PoissonPopulation(0.0, RngRegistry(0).stream("p"))

    def test_users_are_reporting_only(self):
        src = PoissonPopulation(0.5, RngRegistry(1).stream("p"),
                                users=2_000_000)
        assert src.users == 2_000_000
        assert src.mean_rate == 0.5


class TestOnOffPopulation:
    def test_long_run_rate_matches_formula(self):
        src = OnOffPopulation(1.0, 100.0, 300.0, RngRegistry(3).stream("b"))
        assert src.mean_rate == pytest.approx(0.25)
        times = _take_all(src, 400000.0)
        assert times.size == pytest.approx(100000, rel=0.1)

    def test_burstier_than_poisson(self):
        burst = OnOffPopulation(1.0, 100.0, 300.0,
                                RngRegistry(3).stream("b"))
        pois = PoissonPopulation(burst.mean_rate, RngRegistry(3).stream("p"))
        bgaps = np.diff(_take_all(burst, 100000.0))
        pgaps = np.diff(_take_all(pois, 100000.0))

        def cv2(gaps):
            return gaps.var() / gaps.mean() ** 2

        assert cv2(bgaps) > 5 * cv2(pgaps)

    def test_validates_parameters(self):
        with pytest.raises(ConfigError):
            OnOffPopulation(0.0, 1.0, 1.0, RngRegistry(0).stream("b"))


class TestDiurnalPopulation:
    def test_envelope_normalized_to_mean_rate(self):
        src = DiurnalPopulation(0.3, 10000.0, RngRegistry(4).stream("d"))
        assert sum(src.envelope) / len(src.envelope) == pytest.approx(1.0)
        times = _take_all(src, 200000.0)  # 20 whole periods
        assert times.size == pytest.approx(60000, rel=0.05)

    def test_rate_follows_the_phases(self):
        env_shape = (0.2, 1.8)
        src = DiurnalPopulation(0.5, 2000.0, RngRegistry(5).stream("d"),
                                envelope=env_shape)
        times = _take_all(src, 100000.0)
        # First phase of each period is the trough, second the peak.
        phase = (times % 2000.0) < 1000.0
        trough, peak = int(phase.sum()), int((~phase).sum())
        assert peak > 5 * trough

    def test_validates_envelope(self):
        with pytest.raises(ConfigError):
            DiurnalPopulation(0.5, 1000.0, RngRegistry(0).stream("d"),
                              envelope=(1.0, -0.5))


class TestBModelPopulation:
    def test_profile_is_a_conserving_cascade(self):
        src = BModelPopulation(0.4, 8000.0, RngRegistry(8).stream("b"),
                               b=0.7, levels=5)
        assert len(src.envelope) == 32
        assert sum(src.envelope) / len(src.envelope) == pytest.approx(1.0)
        # every phase weight is 2^levels times a product of five
        # factors, each 0.7 or 0.3 (the cascade conserves mass).
        legal = {32 * 0.7 ** k * 0.3 ** (5 - k) for k in range(6)}
        for w in src.envelope:
            assert any(w == pytest.approx(v) for v in legal)

    def test_half_bias_degenerates_to_uniform(self):
        src = BModelPopulation(0.4, 8000.0, RngRegistry(9).stream("b"),
                               b=0.5, levels=6)
        assert len(src.envelope) == 64
        assert all(w == pytest.approx(1.0) for w in src.envelope)

    def test_burstier_than_poisson(self):
        burst = BModelPopulation(0.5, 50000.0, RngRegistry(10).stream("b"),
                                 b=0.85, levels=9)
        pois = PoissonPopulation(0.5, RngRegistry(10).stream("p"))
        edges = np.arange(0.0, 200000.0 + 1, 500.0)
        bc = np.histogram(_take_all(burst, 200000.0), bins=edges)[0]
        pc = np.histogram(_take_all(pois, 200000.0), bins=edges)[0]
        # index of dispersion: ~1 for Poisson, >> 1 for the cascade
        assert bc.var() / bc.mean() > 5 * (pc.var() / pc.mean())

    def test_golden_seed(self):
        # Pins the (seed, b, levels) -> arrivals mapping bit-exactly:
        # both the cascade's coin flips and the conditional-uniform
        # draws come from the named stream, so these floats are part
        # of the reproducibility contract.
        src = BModelPopulation(0.5, 4096.0, RngRegistry(11).stream("b"),
                               b=0.75, levels=4)
        assert list(src.envelope[:4]) == [0.5625, 0.1875, 0.1875, 0.0625]
        times = src.take(0.0, 4096.0)
        assert times.size == 1989
        assert list(times[:3]) == [3.8965489205741335, 6.467513872941964,
                                   19.458469267634797]
        assert times[-1] == 4095.822677496598

    def test_validates_parameters(self):
        with pytest.raises(ConfigError):
            BModelPopulation(0.5, 1000.0, RngRegistry(0).stream("b"), b=1.0)
        with pytest.raises(ConfigError):
            BModelPopulation(0.5, 1000.0, RngRegistry(0).stream("b"), b=0.3)
        with pytest.raises(ConfigError):
            BModelPopulation(0.5, 1000.0, RngRegistry(0).stream("b"),
                             levels=0)


class TestTracePopulation:
    def test_matches_scalar_trace_replay(self):
        stamps = [0.0, 5.0, 7.0, 20.0]
        scalar = TraceReplay(stamps)
        expected = []
        t = 0.0
        for _ in range(9):
            t += scalar.next_gap()
            expected.append(t)
        vector = TracePopulation(stamps)
        times = _take_all(vector, expected[-1] + 1.0, step=7.0)
        assert times[:9] == pytest.approx(expected)

    def test_rescales_to_target_rate(self):
        src = TracePopulation([0.0, 5.0, 7.0, 20.0], rate_per_us=0.5)
        assert src.mean_rate == pytest.approx(0.5)
        times = _take_all(src, 20000.0)
        assert times.size == pytest.approx(10000, rel=0.05)

    def test_validation(self):
        with pytest.raises(ConfigError):
            TracePopulation([1.0])
        with pytest.raises(ConfigError):
            TracePopulation([5.0, 1.0])
        with pytest.raises(ConfigError):
            TracePopulation([2.0, 2.0])  # zero span


class TestArrivalFactory:
    def test_specs(self):
        stream = RngRegistry(0).stream("s")
        assert isinstance(arrival_factory("poisson")(0.5, stream),
                          PoissonPopulation)
        onoff = arrival_factory("onoff:100,300")(0.5, stream)
        assert isinstance(onoff, OnOffPopulation)
        assert onoff.mean_rate == pytest.approx(0.5)
        diurnal = arrival_factory("diurnal:5000")(0.5, stream)
        assert isinstance(diurnal, DiurnalPopulation)
        assert diurnal.period == 5000.0
        bmodel = arrival_factory("bmodel:0.8,5")(0.5, stream)
        assert isinstance(bmodel, BModelPopulation)
        assert (bmodel.b, bmodel.levels) == (0.8, 5)
        default = arrival_factory("bmodel")(0.5, stream)
        assert (default.b, default.levels) == (0.7, 7)
        assert default.mean_rate == pytest.approx(0.5)

    def test_trace_spec(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("0.0\n5.0\n7.0\n")
        src = arrival_factory("trace:%s" % path)(0.25, RngRegistry(0))
        assert isinstance(src, TracePopulation)
        assert src.mean_rate == pytest.approx(0.25)

    def test_unknown_spec(self):
        with pytest.raises(ConfigError):
            arrival_factory("fractal")
        with pytest.raises(ConfigError):
            arrival_factory("trace:")


class TestPayloadPool:
    def test_zipf_prefers_low_ranks(self):
        payloads = [b"k%d" % i for i in range(32)]
        pool = PayloadPool.zipf(payloads, RngRegistry(6).stream("z"))
        idx = pool.sample(20000)
        counts = np.bincount(idx, minlength=32)
        assert counts[0] > 3 * counts[10] > 0
        assert counts.sum() == 20000

    def test_single(self):
        pool = PayloadPool.single(b"x" * 64)
        assert pool.sizes == [64]
        assert (pool.sample(5) == 0).all()

    def test_uniform(self):
        pool = PayloadPool.uniform([b"a", b"bb"], RngRegistry(7).stream("u"))
        idx = pool.sample(4000)
        assert abs(idx.mean() - 0.5) < 0.05

    def test_validation(self):
        with pytest.raises(ConfigError):
            PayloadPool([])
        with pytest.raises(ConfigError):
            PayloadPool([b"a", b"b"])  # multi-payload needs a stream
        with pytest.raises(ConfigError):
            PayloadPool([b"a"], weights=[1.0, 2.0])


class TestInFlightTable:
    def test_resolve_records_latency_and_flow(self):
        table = InFlightTable(capacity=64)
        table.append(10, 100.0, math.inf, 0)
        table.append(12, 110.0, math.inf, 1)
        lat, flows, misses = table.resolve([12, 10], [150.0, 160.0])
        assert lat == pytest.approx([40.0, 60.0])
        assert list(flows) == [1, 0]
        assert misses == 0
        assert table.in_flight == 0

    def test_unknown_and_duplicate_ids_count_as_misses(self):
        table = InFlightTable(capacity=64)
        table.append(5, 0.0, math.inf, 0)
        lat, _, misses = table.resolve([5, 99], [10.0, 10.0])
        assert lat.size == 1 and misses == 1
        _, _, misses = table.resolve([5], [11.0])  # already done
        assert misses == 1

    def test_expire_skips_resolved_rows(self):
        table = InFlightTable(capacity=64)
        table.append(1, 0.0, 50.0, 0)
        table.append(2, 0.0, 50.0, 0)
        table.append(3, 0.0, 500.0, 0)
        table.resolve([1], [10.0])
        assert table.expire(100.0) == 1   # row 2 only
        assert table.in_flight == 1       # row 3 still live
        assert table.expire(100.0) == 0   # idempotent

    def test_compaction_grows_past_capacity(self):
        table = InFlightTable(capacity=64)
        for i in range(1000):
            table.append(i, float(i), math.inf, 0)
            if i % 2:
                table.resolve([i], [float(i)])
        assert table.in_flight == 500
        lat, _, misses = table.resolve([998], [2000.0])
        assert misses == 0 and lat == pytest.approx([1002.0])


def _spin_deployment(seed=42):
    from repro.apps.base import SpinApp
    from repro.experiments.common import LYNX_BLUEFIELD, deploy

    return deploy(LYNX_BLUEFIELD, app=SpinApp(50.0), n_mqueues=4, seed=seed)


def _population_for(dep, rate, coalesce_us=1.0, timeout=None, seed_tag="pop"):
    tb = dep.tb
    flow = Flow("main", PoissonPopulation(rate, tb.rng.stream(seed_tag)),
                PayloadPool.single(b"x" * 64))
    return ClientPopulation(dep.env, tb.network, "10.0.9.1", dep.address,
                            [flow], coalesce_us=coalesce_us, timeout=timeout)


class TestClientPopulation:
    def test_end_to_end_against_lynx(self):
        dep = _spin_deployment()
        pop = _population_for(dep, 0.05, timeout=5000.0)
        dep.tb.warmup_then_measure([pop], 10000.0, 40000.0)
        assert pop.delivered_per_sec() == pytest.approx(50000, rel=0.1)
        summary = pop.latency_summary()
        assert 50.0 < summary["p50"] < 200.0
        assert summary["count"] > 1500
        assert pop.timeouts == 0 and pop.errors == 0

    def test_registry_path(self):
        from repro import telemetry

        telemetry.push_scope()
        try:
            dep = _spin_deployment()
            pop = _population_for(dep, 0.05)
            dep.tb.run(until=dep.env.now + 20000.0)
            pop.flush()
            reg = telemetry.registry()
            hist = reg.get("net.population.10.0.9.1.latency")
            assert hist is pop.latency
            assert hist.count > 0
            snap = reg.snapshot()
            assert "net.population.10.0.9.1.responses" in snap
            assert "net.population.10.0.9.1.flow.main.latency" in snap
        finally:
            telemetry.pop_scope()

    def test_unanswered_requests_time_out(self):
        # Attach a mute endpoint: requests vanish, deadlines fire.
        from repro.experiments.testbed import Testbed
        from repro.net.packet import Address
        from repro.sim import Channel

        tb = Testbed(seed=1)

        class MuteSink:
            rx = Channel(tb.env, name="mute-rx")

        tb.network.attach("10.0.0.9", MuteSink())
        pop = ClientPopulation(
            tb.env, tb.network, "10.0.9.1", Address("10.0.0.9", 7777),
            [Flow("m", PoissonPopulation(0.05, tb.rng.stream("p")),
                  PayloadPool.single(b"x"))],
            timeout=1000.0, chunk=256)  # small chunk: frequent sweeps
        tb.run(until=30000.0)
        pop.flush()
        assert pop.responses.count == 0
        assert pop.timeouts > 1000
        assert pop.table.in_flight < pop.offered

    def test_reset_is_a_warmup_cut(self):
        dep = _spin_deployment()
        pop = _population_for(dep, 0.05)
        dep.tb.run(until=dep.env.now + 10000.0)
        pop.reset()
        assert pop.offered == 0
        dep.tb.run(until=dep.env.now + 10000.0)
        pop.flush()
        assert pop.offered == pytest.approx(500, rel=0.15)
        assert pop.offered_per_sec() == pytest.approx(50000, rel=0.15)

    def test_validates_flows(self):
        dep = _spin_deployment()
        with pytest.raises(ConfigError):
            ClientPopulation(dep.env, dep.tb.network, "10.0.9.1",
                             dep.address, [])

    def test_tcp_flows_rejected(self):
        from repro.net.packet import TCP

        with pytest.raises(ConfigError):
            Flow("t", PoissonPopulation(0.1, RngRegistry(0).stream("p")),
                 PayloadPool.single(b"x"), proto=TCP)


class TestGoldenParity:
    """The flyweight population vs an equivalent set of per-Client
    OpenLoopGenerators, same aggregate rate, fixed seeds.

    Documented tolerances: the two planes draw different random
    arrivals, so this is statistical, not bit-level — delivered rate
    within 5%, p50 within 15%, p99 within 35% (the histogram's <=8%
    bucket error plus tail sampling noise at ~3k samples).
    """

    def test_population_matches_scalar_clients(self):
        from repro.net import OpenLoopGenerator

        rate = 0.05

        dep_s = _spin_deployment(seed=42)
        clients = []
        for i in range(4):
            c = dep_s.tb.client("10.0.9.%d" % (i + 1))
            OpenLoopGenerator(dep_s.env, c, dep_s.address, rate / 4,
                              lambda i: b"x" * 64)
            clients.append(c)
        recs = [r for c in clients for r in (c.responses, c.latency)]
        dep_s.tb.warmup_then_measure(recs, 20000.0, 60000.0)
        scalar_rate = sum(c.responses.per_sec() for c in clients)
        samples = np.concatenate([c.latency.samples for c in clients])

        dep_v = _spin_deployment(seed=42)
        pop = _population_for(dep_v, rate, coalesce_us=0.0)
        dep_v.tb.warmup_then_measure([pop], 20000.0, 60000.0)
        summary = pop.latency_summary()

        assert pop.delivered_per_sec() == pytest.approx(scalar_rate,
                                                        rel=0.05)
        assert summary["p50"] == pytest.approx(
            float(np.percentile(samples, 50)), rel=0.15)
        assert summary["p99"] == pytest.approx(
            float(np.percentile(samples, 99)), rel=0.35)


class TestBackendParity:
    def test_heap_and_wheel_bit_identical(self):
        def run(backend):
            configure_backend(backend)
            try:
                dep = _spin_deployment()
                tb = dep.tb
                flows = [
                    Flow("p", PoissonPopulation(0.03, tb.rng.stream("a")),
                         PayloadPool.single(b"x" * 64)),
                    Flow("b", OnOffPopulation(0.08, 300.0, 500.0,
                                              tb.rng.stream("b")),
                         PayloadPool.zipf([b"k%d" % i for i in range(8)],
                                          tb.rng.stream("z"))),
                ]
                pop = ClientPopulation(dep.env, tb.network, "10.0.9.1",
                                       dep.address, flows, timeout=4000.0)
                tb.warmup_then_measure([pop], 10000.0, 25000.0)
                pop.flush()
                return json.dumps(
                    {"offered": pop.offered,
                     "responses": pop.responses.count,
                     "timeouts": pop.timeouts, "late": pop.late,
                     "hist": pop.latency.snapshot(),
                     "flows": [f.hist.snapshot() for f in pop.flows]},
                    sort_keys=True)
            finally:
                configure_backend(None)

        assert run("heap") == run("wheel")

    def test_same_seed_reproduces(self):
        def run():
            dep = _spin_deployment(seed=7)
            pop = _population_for(dep, 0.05, seed_tag="pop7")
            dep.tb.run(until=dep.env.now + 20000.0)
            pop.flush()
            return (pop.offered, pop.responses.count,
                    json.dumps(pop.latency.snapshot(), sort_keys=True))

        assert run() == run()
