"""One-sided RDMA engine model."""

import pytest

from repro.config import DEFAULT_RDMA, RdmaProfile
from repro.errors import NetworkError
from repro.hw.memory import MemoryRegion
from repro.net.rdma import RdmaEngine
from repro.sim import Environment


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def engine(env):
    return RdmaEngine(env, DEFAULT_RDMA)


@pytest.fixture
def memory(env):
    return MemoryRegion(env, "gpu-mem")


class TestQueuePairs:
    def test_connect_creates_qp(self, engine, memory):
        qp = engine.connect(memory)
        assert qp.target is memory and not qp.remote

    def test_remote_requires_bar_exposed_memory(self, env, engine):
        hidden = MemoryRegion(env, "hidden", exposed_on_pcie=False)
        with pytest.raises(NetworkError):
            engine.connect(hidden, remote=True)

    def test_foreign_qp_rejected(self, env, engine, memory):
        other = RdmaEngine(env, DEFAULT_RDMA, name="other")
        qp = other.connect(memory)
        env.process(engine.write(qp, 10))
        with pytest.raises(NetworkError):
            env.run()


class TestOperations:
    def test_write_latency(self, env, engine, memory):
        qp = engine.connect(memory)

        def proc(env):
            yield from engine.write(qp, 64)
            return env.now

        p = env.process(proc(env))
        env.run()
        assert p.value == pytest.approx(engine.write_time(64))

    def test_read_takes_a_round_trip(self, env, engine, memory):
        qp = engine.connect(memory)
        times = {}

        def proc(env, op, name):
            yield from op(qp, 64)
            times[name] = env.now

        env.process(proc(env, engine.write, "write"))
        env.run()
        env2 = Environment()
        engine2 = RdmaEngine(env2, DEFAULT_RDMA)
        qp2 = engine2.connect(MemoryRegion(env2, "m"))

        def proc2(env):
            yield from engine2.read(qp2, 64)
            times["read"] = env.now

        env2.process(proc2(env2))
        env2.run()
        assert times["read"] > times["write"]

    def test_remote_qp_pays_extra_latency(self, env, engine, memory):
        local = engine.connect(memory)
        remote = engine.connect(memory, remote=True)
        ends = {}

        def proc(env, qp, name):
            yield from engine.write(qp, 64)
            ends[name] = env.now

        env.process(proc(env, local, "local"))
        env.run()
        env_r = Environment()
        engine_r = RdmaEngine(env_r, DEFAULT_RDMA)
        mem_r = MemoryRegion(env_r, "m")
        qp_r = engine_r.connect(mem_r, remote=True)

        def proc_r(env):
            yield from engine_r.write(qp_r, 64)
            ends["remote"] = env.now

        env_r.process(proc_r(env_r))
        env_r.run()
        assert ends["remote"] - ends["local"] == pytest.approx(
            DEFAULT_RDMA.remote_extra_latency)

    def test_issue_serialization_limits_op_rate(self, env, engine, memory):
        qp = engine.connect(memory)
        n = 50

        def proc(env):
            yield from engine.write(qp, 1)

        for _ in range(n):
            env.process(proc(env))
        env.run()
        # 0.1us min gap per op => at least n * 0.1us of issue time
        assert env.now >= n * 0.1

    def test_barrier_read_costs_calibrated_latency(self, env, engine, memory):
        qp = engine.connect(memory)

        def proc(env):
            yield from engine.barrier_read(qp)
            return env.now

        p = env.process(proc(env))
        env.run()
        assert p.value >= DEFAULT_RDMA.barrier_latency

    def test_counters(self, env, engine, memory):
        qp = engine.connect(memory)

        def proc(env):
            yield from engine.write(qp, 100)
            yield from engine.read(qp, 50)

        env.process(proc(env))
        env.run()
        assert qp.ops == 2
        assert qp.bytes_moved == 150
        assert engine.ops_posted == 2

    def test_in_flight_ops_complete_in_post_order(self, env, engine, memory):
        qp = engine.connect(memory)
        done = []

        def writer(env, tag):
            yield from engine.write(qp, 4000)
            done.append((tag, env.now))

        env.process(writer(env, "first"))
        env.process(writer(env, "second"))
        env.run()
        assert [tag for tag, _ in done] == ["first", "second"]
        # the shared issue slot serializes them: strictly later completion
        assert done[0][1] < done[1][1]

    def test_engine_channel_accounts_every_op(self, env, engine, memory):
        qp = engine.connect(memory)

        def proc(env):
            yield from engine.write(qp, 100)
            yield from engine.read(qp, 50)

        env.process(proc(env))
        env.run()
        assert engine.channel.sent == 2
        assert engine.channel.bytes_moved == 150

    def test_bandwidth_dominates_large_transfers(self, env, memory):
        profile = RdmaProfile(bandwidth=1000.0)  # 1000 B/us
        engine = RdmaEngine(Environment(), profile)
        # analytic check only
        assert engine.write_time(100000) == pytest.approx(
            100000 / 1000.0 + profile.op_latency)
