"""Network stack cost models and TCP connection state."""

import pytest

from repro.config import ARM_KERNEL, ARM_VMA, XEON_KERNEL, XEON_VMA
from repro.errors import NetworkError
from repro.hw.cpu import CorePool
from repro.config import XEON_E5_2620
from repro.net.packet import Address, Message, TCP, UDP
from repro.net.stack import NetworkStack, TcpConnection
from repro.sim import Environment


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def stack(env):
    pool = CorePool(env, XEON_E5_2620, count=1)
    return NetworkStack(env, pool, XEON_VMA)


def _msg(proto=UDP, size=64, conn=None):
    return Message(Address("10.0.0.9", 1111), Address("10.0.0.1", 7777),
                   b"x" * size, proto=proto, conn=conn)


class TestCosts:
    def test_udp_cost_scales_with_size(self, stack):
        small = stack.rx_cost(_msg(size=10))
        large = stack.rx_cost(_msg(size=1400))
        assert large > small
        assert small == pytest.approx(
            XEON_VMA.udp_rx_fixed + 10 * XEON_VMA.udp_per_byte)

    def test_tcp_costs_exceed_udp(self, stack):
        assert stack.rx_cost(_msg(TCP)) > stack.rx_cost(_msg(UDP))
        assert stack.tx_cost(_msg(TCP)) > stack.tx_cost(_msg(UDP))

    def test_vma_cheaper_than_kernel_by_calibrated_factor(self):
        # §5.1.1: VMA cuts UDP processing ~4x on ARM, ~2x on Xeon.
        arm_ratio = ARM_KERNEL.udp_rx_fixed / ARM_VMA.udp_rx_fixed
        xeon_ratio = XEON_KERNEL.udp_rx_fixed / XEON_VMA.udp_rx_fixed
        assert arm_ratio == pytest.approx(4.0, rel=0.05)
        assert xeon_ratio == pytest.approx(2.0, rel=0.05)

    def test_processing_charges_core_time(self, env, stack):
        def proc(env):
            yield from stack.process_rx(_msg())
            return env.now

        p = env.process(proc(env))
        env.run()
        assert p.value == pytest.approx(stack.rx_cost(_msg()))


class TestTcpConnection:
    def test_sequence_numbers_per_side(self):
        conn = TcpConnection(Address("c", 1), Address("s", 2))
        assert conn.next_seq(Address("c", 1)) == 1
        assert conn.next_seq(Address("c", 1)) == 2
        assert conn.next_seq(Address("s", 2)) == 1

    def test_in_order_delivery_validated(self):
        conn = TcpConnection(Address("c", 1), Address("s", 2))
        msg = _msg(TCP, conn=conn)
        msg.src = Address("c", 1)
        msg.meta["tcp_seq"] = 1
        conn.deliver(msg)
        msg2 = _msg(TCP, conn=conn)
        msg2.src = Address("c", 1)
        msg2.meta["tcp_seq"] = 3  # skipped 2
        with pytest.raises(NetworkError, match="out-of-order"):
            conn.deliver(msg2)

    def test_segment_without_seq_rejected(self):
        conn = TcpConnection(Address("c", 1), Address("s", 2))
        with pytest.raises(NetworkError):
            conn.deliver(_msg(TCP, conn=conn))

    def test_process_tx_stamps_and_rx_validates(self, env, stack):
        conn = TcpConnection(Address("10.0.0.9", 1111), Address("10.0.0.1", 7777))
        msg = _msg(TCP, conn=conn)

        def proc(env):
            yield from stack.process_tx(msg)
            yield from stack.process_rx(msg)

        env.process(proc(env))
        env.run()
        assert msg.meta["tcp_seq"] == 1
        assert conn.client_delivered == 1


class TestControlHandling:
    def test_listening_ports(self, stack):
        stack.listen(7777)
        assert stack.is_listening(7777)
        assert not stack.is_listening(8888)

    def test_non_control_messages_ignored(self, stack):
        assert not stack.handle_control(_msg(), nic=None)

    def test_closed_port_syn_dropped_and_counted(self, env, stack):
        # A SYN for a port nobody listens on is consumed (True) but
        # dropped — and the loss is visible, not silent.
        conn = TcpConnection(client=Address("10.0.0.9", 1111),
                             server=Address("10.0.0.1", 9999))
        syn = Message(Address("10.0.0.9", 1111), Address("10.0.0.1", 9999),
                      b"", proto=TCP, conn=conn, kind="tcp-syn")
        syn.meta["conn"] = conn
        assert stack.handle_control(syn, nic=None)
        assert stack.closed_port_drops == 1
        assert not conn.established
        # The counter is in the telemetry registry for the scorecard.
        from repro import telemetry

        snap = telemetry.registry().snapshot(
            "net.stack.%s.closed_port_drops" % stack.name)
        assert snap["net.stack.%s.closed_port_drops" % stack.name][
            "value"] == 1

    def test_open_port_syn_not_counted_as_drop(self, env):
        from repro.hw.nic import Nic
        from repro.net import Network

        network = Network(env)
        nic = Nic(env, network, "10.0.0.1")
        pool = CorePool(env, XEON_E5_2620, count=1)
        stack = NetworkStack(env, pool, XEON_VMA, name="open-port-stack")
        stack.listen(7777)
        conn = TcpConnection(client=Address("10.0.0.9", 1111),
                             server=Address("10.0.0.1", 7777))
        syn = Message(Address("10.0.0.9", 1111), Address("10.0.0.1", 7777),
                      b"", proto=TCP, conn=conn, kind="tcp-syn")
        syn.meta["conn"] = conn
        assert stack.handle_control(syn, nic=nic)
        env.run(until=100)
        assert stack.closed_port_drops == 0
        assert conn.established
