"""Unit tests for the frame-execution toolkit (DESIGN.md §4.14).

The data-plane integration — whole experiments bit-identical scalar vs
frame — lives in ``tests/experiments``; these tests pin the primitives
themselves: admission guards, sequence-number burning, scalar-exact
timestamps, the gauge arithmetic of ``seize``/``unseize``, the
``try_stage`` stage coalescer, and the ``Channel.frame_pop``/
``frame_push`` ring handoffs.
"""

import pytest

from repro.sim import Channel, Environment, PriorityStore, Resource
from repro.sim import batchexec
from repro.sim.environment import resolve_frame_exec


def _env(frame=True):
    env = Environment()
    env.frame_exec = frame
    return env


class TestGuards:
    def test_clear_span_is_strict(self):
        env = _env()
        env.timeout(10.0)
        assert batchexec.clear_span(env, 9.999)
        assert not batchexec.clear_span(env, 10.0)
        assert not batchexec.clear_span(env, 11.0)

    def test_clear_span_on_empty_schedule(self):
        env = _env()
        assert batchexec.clear_span(env, 1e12)

    def test_frame_enabled_respects_knob_and_tracer(self):
        env = _env(frame=True)
        assert batchexec.frame_enabled(env)
        env.frame_exec = False
        assert not batchexec.frame_enabled(env)

    def test_burn_matches_scalar_eid_consumption(self):
        a, b = _env(), _env()
        a.timeout(1.0)
        a.timeout(2.0)
        batchexec.burn(b, 2)
        assert a._eid == b._eid
        # Events scheduled after the span consume the same sequence
        # numbers either way — the whole point of burning.
        a.timeout(3.0)
        b.timeout(3.0)
        assert a._eid == b._eid

    def test_pool_ready(self):
        env = _env()
        res = Resource(env, 1, name="r")
        assert batchexec.pool_ready(res)
        res.request(0)
        env.run()
        assert not batchexec.pool_ready(res)


class TestSpanTimes:
    def test_matches_sequential_additions_exactly(self):
        # Deliberately awkward floats: cumsum and sequential addition
        # can differ in the last ulp, and the scalar chain does the
        # latter.
        durations = [0.1, 0.7, 1.3, 0.30000000000000004, 2.5e-3]
        start = 123.45600000000002
        times = batchexec.span_times(start, durations)
        t = start
        for d, got in zip(durations, times):
            t = t + d
            assert got == t  # bit-exact, not approx

    def test_frame_offsets_is_cumsum(self):
        offs = batchexec.frame_offsets([1.0, 2.0, 3.0])
        assert list(offs) == [1.0, 3.0, 6.0]


class TestRingPlain:
    def test_plain_channel_qualifies(self):
        env = _env()
        ch = Channel(env, capacity=4, name="c")
        assert batchexec.ring_plain(ch)

    def test_instance_land_shadow_disqualifies(self):
        # The fault injector installs per-instance _land shadows; any
        # such override must force the scalar fallback.
        env = _env()
        ch = Channel(env, capacity=4, name="c")
        ch._land = lambda item: None
        assert not batchexec.ring_plain(ch)

    def test_parked_getter_disqualifies(self):
        env = _env()
        ch = Channel(env, capacity=4, name="c")

        def consumer():
            yield ch.get()

        env.process(consumer())
        env.run()
        assert not batchexec.ring_plain(ch)

    def test_parked_putter_disqualifies(self):
        env = _env()
        ch = Channel(env, capacity=1, name="c")
        assert ch.try_put("a")

        def producer():
            yield ch.put("b")

        env.process(producer())
        env.run()
        assert not batchexec.ring_plain(ch)

    def test_priority_store_disqualifies(self):
        env = _env()
        ps = PriorityStore(env, capacity=4, name="p")
        assert not batchexec.ring_plain(ps)


class TestSeizeUnseize:
    def test_gauge_state_matches_scalar_request_release(self):
        # Drive the same occupancy history through the scalar Request
        # path and through seize/unseize; every gauge internal must be
        # bit-identical at the end.
        scalar = _env(frame=False)
        framed = _env(frame=True)
        rs = Resource(scalar, 2, name="r")
        rf = Resource(framed, 2, name="r")

        def scalar_user():
            req = rs.request(0)
            yield req
            yield scalar.charge(5.0)
            req.release()

        scalar.process(scalar_user())
        scalar.run()

        batchexec.seize(rf)
        framed.defer_at(5.0, lambda _e: batchexec.unseize(rf))
        framed.run()

        for a, b in ((rs.utilization, rf.utilization),
                     (rs.queue_depth, rf.queue_depth)):
            assert a._value == b._value
            assert a._area == b._area
            assert a._last_change == b._last_change
            assert a._max == b._max

    def test_unseize_grants_parked_waiter(self):
        env = _env()
        res = Resource(env, 1, name="r")
        batchexec.seize(res)
        granted = []

        def waiter():
            yield res.request(0)
            granted.append(env.now)

        env.process(waiter())
        env.defer_at(3.0, lambda _e: batchexec.unseize(res))
        env.run()
        assert granted == [3.0]


class TestTryStage:
    def test_coalesces_grant_and_charge_into_one_event(self):
        env = _env()
        res = Resource(env, 1, name="r")
        done_at = []

        def done(_event):
            batchexec.unseize(res)
            done_at.append(env.now)

        assert batchexec.try_stage(env, res, 2.5, done)
        env.run()
        assert done_at == [2.5]
        assert env.events_processed == 1
        assert batchexec.pool_ready(res)

    def test_declines_on_contention(self):
        env = _env()
        res = Resource(env, 1, name="r")
        res.request(0)
        env.run()
        assert not batchexec.try_stage(env, res, 1.0, lambda e: None)

    def test_declines_on_dirty_span(self):
        env = _env()
        res = Resource(env, 1, name="r")
        env.timeout(0.5)  # lands inside the would-be span
        assert not batchexec.try_stage(env, res, 1.0, lambda e: None)
        assert batchexec.pool_ready(res)  # declined before seizing


class TestChannelFrameHandoff:
    def test_frame_pop_inline(self):
        env = _env()
        ch = Channel(env, capacity=4, name="c")
        assert ch.try_put("a")
        env.run()  # drain the put's same-instant bookkeeping event
        eid = env._eid
        assert ch.frame_pop() == "a"
        assert env._eid == eid + 1  # burned the skipped get event

    def test_frame_pop_declines_when_empty_or_disabled(self):
        env = _env()
        ch = Channel(env, capacity=4, name="c")
        assert ch.frame_pop() is None
        assert ch.try_put("a")
        env.run()
        env.frame_exec = False
        assert ch.frame_pop() is None

    def test_frame_pop_declines_on_dirty_instant(self):
        # try_put leaves a same-instant event pending; the clear-span
        # guard must decline rather than pop across it.
        env = _env()
        ch = Channel(env, capacity=4, name="c")
        assert ch.try_put("a")
        assert ch.frame_pop() is None

    def test_frame_pop_declines_on_shadowed_ring(self):
        env = _env()
        ch = Channel(env, capacity=4, name="c")
        assert ch.try_put("a")
        env.run()
        ch._land = lambda item: None
        assert ch.frame_pop() is None

    def test_frame_push_inline(self):
        env = _env()
        ch = Channel(env, capacity=2, name="c")
        eid = env._eid
        assert ch.frame_push("a")
        assert env._eid == eid + 1
        assert ch.total_put == 1
        assert ch.try_get() == "a"

    def test_frame_push_declines_when_full(self):
        env = _env()
        ch = Channel(env, capacity=1, name="c")
        assert ch.frame_push("a")
        assert not ch.frame_push("b")

    def test_push_pop_roundtrip_preserves_fifo(self):
        env = _env()
        ch = Channel(env, capacity=8, name="c")
        for item in ("a", "b", "c"):
            assert ch.frame_push(item)
        assert [ch.frame_pop() for _ in range(3)] == ["a", "b", "c"]


class TestResolveFrameExec:
    @pytest.fixture(autouse=True)
    def _clean_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_FRAME_EXEC", raising=False)

    def test_backend_defaults(self):
        assert resolve_frame_exec("wheel") is True
        assert resolve_frame_exec("heap") is False

    def test_environment_overrides_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_FRAME_EXEC", "1")
        assert resolve_frame_exec("heap") is True
        monkeypatch.setenv("REPRO_FRAME_EXEC", "0")
        assert resolve_frame_exec("wheel") is False

    def test_configured_beats_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_FRAME_EXEC", "0")
        assert resolve_frame_exec("heap", configured=True) is True
        monkeypatch.setenv("REPRO_FRAME_EXEC", "1")
        assert resolve_frame_exec("wheel", configured=False) is False

    def test_blank_environment_falls_through(self, monkeypatch):
        monkeypatch.setenv("REPRO_FRAME_EXEC", "  ")
        assert resolve_frame_exec("wheel") is True
        assert resolve_frame_exec("heap") is False
