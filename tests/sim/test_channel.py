"""The unified Channel hop (DESIGN.md §4.7)."""

import pytest

from repro.errors import CapacityError, SimulationError
from repro.sim import Channel, Environment, Tracer
from repro.sim.trace import clear_enabled_tracers


@pytest.fixture
def env():
    return Environment()


class TestBuffering:
    def test_fifo_order(self, env):
        ch = Channel(env, name="fifo")
        for item in ("a", "b", "c"):
            ch.put(item)
        assert [ch.try_get() for _ in range(3)] == ["a", "b", "c"]

    def test_capacity_bounds_try_put(self, env):
        ch = Channel(env, name="ring", capacity=2)
        assert ch.try_put(1)
        assert ch.try_put(2)
        assert not ch.try_put(3)

    def test_recv_batch_bounded_and_unbounded(self, env):
        ch = Channel(env, name="batch")
        for i in range(5):
            ch.put(i)
        assert ch.recv_batch(max_items=2) == [0, 1]
        assert ch.recv_batch() == [2, 3, 4]
        assert ch.recv_batch() == []


class TestCostModel:
    def test_occupancy_from_bandwidth(self, env):
        ch = Channel(env, bandwidth=100.0)  # bytes/us
        assert ch.occupancy(500) == pytest.approx(5.0)

    def test_min_occupancy_floor(self, env):
        ch = Channel(env, bandwidth=100.0, min_occupancy=0.5)
        assert ch.occupancy(1) == pytest.approx(0.5)
        assert ch.occupancy(500) == pytest.approx(5.0)

    def test_occupancy_without_bandwidth_is_floor(self, env):
        ch = Channel(env, min_occupancy=0.25)
        assert ch.occupancy(10 ** 6) == pytest.approx(0.25)

    def test_transfer_charges_occupancy_then_latency(self, env):
        ch = Channel(env, bandwidth=100.0, latency=2.0)

        def proc(env):
            yield from ch.transfer(100)
            return env.now

        p = env.process(proc(env))
        env.run()
        assert p.value == pytest.approx(1.0 + 2.0)
        assert ch.sent == 1
        assert ch.bytes_moved == 100

    def test_post_latency_overrides_channel_latency(self, env):
        ch = Channel(env, bandwidth=100.0, latency=2.0)

        def proc(env):
            yield from ch.transfer(100, post_latency=0.0)
            return env.now

        p = env.process(proc(env))
        env.run()
        assert p.value == pytest.approx(1.0)

    def test_serialized_transfers_queue_on_issue_slot(self, env):
        ch = Channel(env, serialized=True, bandwidth=10.0)
        ends = []

        def proc(env):
            yield from ch.transfer(100)  # 10us occupancy each
            ends.append(env.now)

        for _ in range(3):
            env.process(proc(env))
        env.run()
        assert ends == pytest.approx([10.0, 20.0, 30.0])

    def test_negative_transfer_rejected(self, env):
        ch = Channel(env)
        with pytest.raises(SimulationError):
            next(ch.transfer(-1))


class TestPush:
    def test_push_lands_after_latency(self, env):
        ch = Channel(env, name="wire", latency=3.0)
        ch.push("pkt")
        assert ch.try_get() is None
        env.run()
        assert env.now == pytest.approx(3.0)
        assert ch.try_get() == "pkt"
        assert ch.delivered == 1

    def test_push_into_full_sink_counts_drop(self, env):
        sink = Channel(env, name="rx", capacity=1)
        wire = Channel(env, name="wire", latency=1.0, sink=sink)
        wire.push("a")
        wire.push("b")
        env.run()
        assert sink.try_get() == "a"
        assert wire.delivered == 1
        assert wire.dropped == 1


class TestPushMany:
    def test_burst_lands_in_order_after_latency(self, env):
        sink = Channel(env, name="rx")
        wire = Channel(env, name="wire", latency=3.0, sink=sink)
        wire.push_many(["a", "b", "c"], nbytes=30)
        assert sink.try_get() is None
        env.run()
        assert env.now == pytest.approx(3.0)
        assert sink.recv_batch() == ["a", "b", "c"]
        assert wire.sent == 3 and wire.delivered == 3
        assert wire.bytes_moved == 30
        assert sink.total_put == 3

    def test_burst_wakes_a_parked_getter(self, env):
        sink = Channel(env, name="rx")
        wire = Channel(env, name="wire", latency=1.0, sink=sink)
        got = []

        def consumer(env):
            item = yield sink.get()
            got.append(item)

        env.process(consumer(env))
        wire.push_many(["a", "b", "c"])
        env.run()
        assert got == ["a"]
        assert sink.recv_batch() == ["b", "c"]
        assert wire.delivered == 3

    def test_burst_drop_tail_on_tight_capacity(self, env):
        sink = Channel(env, name="rx", capacity=2)
        wire = Channel(env, name="wire", latency=1.0, sink=sink)
        wire.push_many(["a", "b", "c", "d"])
        env.run()
        assert sink.recv_batch() == ["a", "b"]
        assert wire.delivered == 2
        assert wire.dropped == 2

    def test_interleaves_fifo_with_push(self, env):
        sink = Channel(env, name="rx")
        wire = Channel(env, name="wire", latency=2.0, sink=sink)
        wire.push("a")
        wire.push_many(["b", "c"])
        wire.push("d")
        env.run()
        assert sink.recv_batch() == ["a", "b", "c", "d"]

    def test_empty_burst_is_a_no_op(self, env):
        wire = Channel(env, name="wire", latency=1.0)
        wire.push_many([])
        env.run()
        assert wire.sent == 0
        assert env.now == 0.0

    def test_traced_channel_falls_back_per_item(self, env):
        env.tracer = Tracer(env, enabled=True)
        try:
            sink = Channel(env, name="rx2")
            wire = Channel(env, name="wire2", latency=1.0, sink=sink)
            wire.push_many(["a", "b"])
            env.run()
            events = [rec[2] for rec in env.tracer.filter(channel="wire2")]
            assert events.count("deliver") == 2
            assert sink.recv_batch() == ["a", "b"]
        finally:
            clear_enabled_tracers()


class TestCredits:
    def test_try_claim_respects_capacity(self, env):
        ch = Channel(env, capacity=2)
        assert ch.try_claim()
        assert ch.try_claim()
        assert not ch.try_claim()
        assert ch.claimed == 2

    def test_release_without_claim_raises(self, env):
        ch = Channel(env, capacity=2)
        with pytest.raises(CapacityError):
            ch.release_claim()

    def test_complete_claim_makes_item_visible(self, env):
        ch = Channel(env, capacity=1)
        assert ch.try_claim()
        ch.complete_claim("item")
        assert len(ch) == 1
        assert ch.delivered == 1

    def test_complete_without_claim_raises(self, env):
        ch = Channel(env, capacity=1)
        with pytest.raises(CapacityError):
            ch.complete_claim("item")

    def test_claim_wait_blocks_producer_until_consumer_frees(self, env):
        ch = Channel(env, capacity=1)
        assert ch.try_claim()
        ch.complete_claim("first")
        log = []

        def producer(env):
            yield ch.claim_wait()  # parked: ring is full
            log.append(("granted", env.now))
            ch.complete_claim("second")

        def consumer(env):
            yield env.charge(5.0)
            item = ch.try_get()
            log.append(("popped", item, env.now))
            ch.release_claim()

        env.process(producer(env))
        env.process(consumer(env))
        env.run()
        assert log[0] == ("popped", "first", 5.0)
        assert log[1] == ("granted", 5.0)
        assert ch.try_get() == "second"

    def test_claim_wait_succeeds_immediately_with_space(self, env):
        ch = Channel(env, capacity=2)
        event = ch.claim_wait()
        assert event.triggered
        assert ch.claimed == 1


class TestTracing:
    def test_channel_emits_uniform_schema(self, env):
        env.tracer = Tracer(env, enabled=True)
        try:
            ch = Channel(env, name="traced", latency=1.0)
            ch.push("x")
            env.run()
            ch.try_get()
            events = [rec[2] for rec in env.tracer.filter(channel="traced")]
            assert "deliver" in events
            assert "deq" in events
            for rec in env.tracer.records:
                assert len(rec) == 5
        finally:
            clear_enabled_tracers()

    def test_disabled_tracer_keeps_store_fast_paths(self, env):
        ch = Channel(env, name="fast")
        assert ch._tracer is None
        assert type(ch).put.__get__(ch) == ch.put
