"""Environment scheduling and run-loop behaviour."""

import pytest

from repro.errors import SimulationError
from repro.sim import Environment


@pytest.fixture
def env():
    return Environment()


def ticker(env, period, log):
    while True:
        yield env.timeout(period)
        log.append(env.now)


class TestRun:
    def test_run_until_time_stops_clock_exactly(self, env):
        log = []
        env.process(ticker(env, 10, log))
        env.run(until=35)
        assert env.now == 35
        assert log == [10, 20, 30]

    def test_run_until_event_returns_its_value(self, env):
        def proc(env):
            yield env.timeout(4)
            return "done"

        p = env.process(proc(env))
        assert env.run(until=p) == "done"
        assert env.now == 4

    def test_run_drains_schedule_when_no_until(self, env):
        def proc(env):
            yield env.timeout(1)
            yield env.timeout(2)

        env.process(proc(env))
        assert env.run() is None
        assert env.now == 3

    def test_run_until_past_time_rejected(self, env):
        env.run(until=10)
        with pytest.raises(SimulationError):
            env.run(until=5)

    def test_run_can_resume(self, env):
        log = []
        env.process(ticker(env, 10, log))
        env.run(until=15)
        env.run(until=45)
        assert log == [10, 20, 30, 40]

    def test_run_until_event_that_never_fires(self, env):
        evt = env.event()

        def proc(env):
            yield env.timeout(1)

        env.process(proc(env))
        with pytest.raises(SimulationError, match="never fired"):
            env.run(until=evt)

    def test_time_never_goes_backwards(self, env):
        observed = []

        def proc(env, delay):
            yield env.timeout(delay)
            observed.append(env.now)

        for delay in [5, 1, 9, 1, 7, 3]:
            env.process(proc(env, delay))
        env.run()
        assert observed == sorted(observed)


class TestPeekStep:
    def test_peek_empty_schedule(self, env):
        assert env.peek() == float("inf")

    def test_peek_shows_next_event_time(self, env):
        env.timeout(12)
        env.timeout(5)
        assert env.peek() == 5

    def test_step_advances_one_event(self, env):
        env.timeout(5)
        env.timeout(12)
        env.step()
        assert env.now == 5
        env.step()
        assert env.now == 12


class TestActiveProcess:
    def test_active_process_visible_inside(self, env):
        seen = []

        def proc(env):
            seen.append(env.active_process)
            yield env.timeout(1)

        p = env.process(proc(env))
        env.run()
        assert seen == [p]
        assert env.active_process is None
