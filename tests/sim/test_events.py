"""Event and process semantics of the simulation kernel."""

import pytest

from repro.errors import SimulationError
from repro.sim import Environment, Interrupt


@pytest.fixture
def env():
    return Environment()


class TestEvent:
    def test_starts_untriggered(self, env):
        evt = env.event()
        assert not evt.triggered
        assert not evt.processed

    def test_succeed_delivers_value(self, env):
        evt = env.event()
        got = []

        def waiter(env):
            got.append((yield evt))

        env.process(waiter(env))
        evt.succeed(41)
        env.run()
        assert got == [41]

    def test_double_trigger_rejected(self, env):
        evt = env.event()
        evt.succeed(1)
        with pytest.raises(SimulationError):
            evt.succeed(2)
        with pytest.raises(SimulationError):
            evt.fail(RuntimeError("x"))

    def test_fail_requires_exception(self, env):
        with pytest.raises(SimulationError):
            env.event().fail("not an exception")

    def test_value_of_pending_event_raises(self, env):
        with pytest.raises(SimulationError):
            env.event().value

    def test_failed_event_raises_in_waiter(self, env):
        evt = env.event()
        caught = []

        def waiter(env):
            try:
                yield evt
            except RuntimeError as exc:
                caught.append(str(exc))

        env.process(waiter(env))
        evt.fail(RuntimeError("boom"))
        env.run()
        assert caught == ["boom"]

    def test_unhandled_failure_propagates_from_run(self, env):
        def bad(env):
            yield env.timeout(1)
            raise ValueError("unhandled")

        env.process(bad(env))
        with pytest.raises(ValueError, match="unhandled"):
            env.run()


class TestTimeout:
    def test_fires_at_the_right_time(self, env):
        times = []

        def proc(env):
            yield env.timeout(3.5)
            times.append(env.now)
            yield env.timeout(0.5)
            times.append(env.now)

        env.process(proc(env))
        env.run()
        assert times == [3.5, 4.0]

    def test_negative_delay_rejected(self, env):
        with pytest.raises(SimulationError):
            env.timeout(-1)

    def test_zero_delay_is_allowed(self, env):
        seen = []

        def proc(env):
            yield env.timeout(0)
            seen.append(env.now)

        env.process(proc(env))
        env.run()
        assert seen == [0.0]

    def test_carries_value(self, env):
        def proc(env):
            value = yield env.timeout(1, value="payload")
            return value

        p = env.process(proc(env))
        env.run()
        assert p.value == "payload"


class TestProcess:
    def test_return_value_becomes_event_value(self, env):
        def proc(env):
            yield env.timeout(1)
            return 99

        p = env.process(proc(env))
        env.run()
        assert p.ok and p.value == 99

    def test_process_is_waitable(self, env):
        def inner(env):
            yield env.timeout(2)
            return "inner-result"

        def outer(env):
            result = yield env.process(inner(env))
            return (env.now, result)

        p = env.process(outer(env))
        env.run()
        assert p.value == (2.0, "inner-result")

    def test_requires_generator(self, env):
        with pytest.raises(SimulationError):
            env.process(lambda: None)

    def test_yielding_non_event_fails_process(self, env):
        def bad(env):
            yield 42

        env.process(bad(env))
        with pytest.raises(SimulationError, match="non-event"):
            env.run()

    def test_is_alive_transitions(self, env):
        def proc(env):
            yield env.timeout(5)

        p = env.process(proc(env))
        assert p.is_alive
        env.run()
        assert not p.is_alive

    def test_exception_in_process_fails_waiters(self, env):
        def inner(env):
            yield env.timeout(1)
            raise KeyError("inner-bug")

        def outer(env):
            try:
                yield env.process(inner(env))
            except KeyError:
                return "caught"

        p = env.process(outer(env))
        env.run()
        assert p.value == "caught"


class TestInterrupt:
    def test_interrupt_delivers_cause(self, env):
        def victim(env):
            try:
                yield env.timeout(100)
            except Interrupt as intr:
                return (env.now, intr.cause)

        def attacker(env, victim_proc):
            yield env.timeout(7)
            victim_proc.interrupt("failure-injection")

        v = env.process(victim(env))
        env.process(attacker(env, v))
        env.run()
        assert v.value == (7.0, "failure-injection")

    def test_interrupted_process_can_continue(self, env):
        def victim(env):
            try:
                yield env.timeout(100)
            except Interrupt:
                pass
            yield env.timeout(5)
            return env.now

        def attacker(env, victim_proc):
            yield env.timeout(10)
            victim_proc.interrupt()

        v = env.process(victim(env))
        env.process(attacker(env, v))
        env.run()
        assert v.value == 15.0

    def test_cannot_interrupt_dead_process(self, env):
        def quick(env):
            yield env.timeout(1)

        p = env.process(quick(env))
        env.run()
        with pytest.raises(SimulationError):
            p.interrupt()


class TestConditions:
    def test_any_of_returns_first(self, env):
        def proc(env):
            early = env.timeout(3, "early")
            late = env.timeout(9, "late")
            result = yield env.any_of([early, late])
            return (env.now, sorted(result.values()))

        p = env.process(proc(env))
        env.run()
        assert p.value == (3.0, ["early"])

    def test_all_of_waits_for_every_event(self, env):
        def proc(env):
            a = env.timeout(2, "a")
            b = env.timeout(5, "b")
            result = yield env.all_of([a, b])
            return (env.now, sorted(result.values()))

        p = env.process(proc(env))
        env.run()
        assert p.value == (5.0, ["a", "b"])

    def test_empty_condition_fires_immediately(self, env):
        def proc(env):
            yield env.all_of([])
            return env.now

        p = env.process(proc(env))
        env.run()
        assert p.value == 0.0

    def test_simultaneous_events_both_collected(self, env):
        def proc(env):
            a = env.timeout(4, "a")
            b = env.timeout(4, "b")
            result = yield env.any_of([a, b])
            return sorted(result.values())

        p = env.process(proc(env))
        env.run()
        # 'a' is scheduled first, so at minimum it is present.
        assert "a" in p.value

    def test_condition_failure_propagates(self, env):
        def failer(env):
            yield env.timeout(1)
            raise RuntimeError("dead")

        def proc(env):
            f = env.process(failer(env))
            t = env.timeout(10)
            try:
                yield env.all_of([f, t])
            except RuntimeError:
                return "condition-failed"

        p = env.process(proc(env))
        env.run()
        assert p.value == "condition-failed"


class TestProcessedEventYield:
    def test_yielding_processed_event_resumes_immediately(self):
        env = Environment()

        def proc(env):
            evt = env.timeout(1, "val")
            yield env.timeout(5)  # evt fires and is processed meanwhile
            value = yield evt
            return (env.now, value)

        p = env.process(proc(env))
        env.run()
        assert p.value == (5.0, "val")

    def test_two_waiters_on_one_event_both_get_value(self):
        env = Environment()
        evt = env.event()
        got = []

        def waiter(env):
            got.append((yield evt))

        env.process(waiter(env))
        env.process(waiter(env))
        evt.succeed("shared")
        env.run()
        assert got == ["shared", "shared"]

    def test_process_event_value_queryable_after_run(self):
        env = Environment()

        def proc(env):
            yield env.timeout(2)
            return {"answer": 42}

        p = env.process(proc(env))
        env.run()
        assert p.processed and p.ok
        assert p.value == {"answer": 42}
