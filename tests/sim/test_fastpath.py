"""Fast-path kernel primitives: pooled charges, detached tasks, counters."""

import pytest

from repro.errors import SimulationError
from repro.sim import Charge, Environment, Interrupt, Timeout


@pytest.fixture
def env():
    return Environment()


class TestChargePool:
    def test_charge_behaves_like_timeout(self, env):
        log = []

        def proc(env):
            yield env.charge(5.0)
            log.append(env.now)
            value = yield env.charge(2.5, value="v")
            log.append(value)

        env.process(proc(env))
        env.run()
        assert log == [5.0, "v"]
        assert env.now == 7.5

    def test_fired_charge_is_recycled_and_reused(self, env):
        def proc(env):
            yield env.charge(1.0)

        env.process(proc(env))
        env.run()
        # Two pooled events came back: the spawn kick and the charge.
        assert len(env._charge_pool) == 2
        recycled = env._charge_pool[-1]
        assert isinstance(recycled, Charge)
        assert recycled.callbacks == []  # cleared, ready for reuse
        # The next charge must reuse the exact same object.
        again = env.charge(3.0)
        assert again is recycled
        assert env.charges_reused >= 1
        env.run()

    def test_step_also_recycles(self, env):
        env.charge(1.0)
        env.step()
        assert len(env._charge_pool) == 1

    def test_plain_timeout_is_never_pooled(self, env):
        def proc(env):
            yield env.timeout(1.0)

        env.process(proc(env))
        env.run()
        assert all(isinstance(e, Charge) for e in env._charge_pool)
        assert not any(type(e) is Timeout for e in env._charge_pool)

    def test_negative_charge_rejected(self, env):
        with pytest.raises(SimulationError):
            env.charge(-1.0)
        with pytest.raises(SimulationError):
            env.defer(-1.0, lambda evt: None)

    def test_pool_is_capped(self, env):
        def burst(env):
            for _ in range(10):
                yield env.charge(0.1)

        for _ in range(3):
            env.process(burst(env))
        env.run()
        assert len(env._charge_pool) <= Environment.POOL_CAP

    def test_charge_under_interrupt_fires_harmlessly(self, env):
        """An interrupted waiter abandons its charge; the event still
        fires (with no callbacks), is recycled, and the sim goes on."""
        seen = []

        def victim(env):
            try:
                yield env.charge(10.0)
                seen.append("finished")
            except Interrupt as exc:
                seen.append(("interrupted", exc.cause))
                yield env.charge(4.0)  # a fresh charge still works
                seen.append(env.now)

        def attacker(env, target):
            yield env.charge(3.0)
            target.interrupt("die")

        p = env.process(victim(env))
        env.process(attacker(env, p))
        env.run()
        assert seen == [("interrupted", "die"), 7.0]
        # Both the abandoned charge (fired at t=10 with no waiters) and
        # the others are back in the pool.
        assert len(env._charge_pool) >= 2

    def test_defer_invokes_callback_at_time(self, env):
        fired = []
        env.defer(2.0, lambda evt: fired.append(env.now))
        env.run()
        assert fired == [2.0]

    def test_charge_orders_like_timeout_at_equal_time(self, env):
        """Creation order breaks timestamp ties, mixing both kinds."""
        order = []

        def a(env):
            yield env.timeout(5.0)
            order.append("timeout")

        def b(env):
            yield env.charge(5.0)
            order.append("charge")

        env.process(a(env))
        env.process(b(env))
        env.run()
        assert order == ["timeout", "charge"]


class TestImmediate:
    def test_immediate_resumes_synchronously(self, env):
        log = []

        def proc(env):
            value = yield env.immediate(99)
            log.append((env.now, value, env.events_processed))

        env.process(proc(env))
        env.run()
        # Only the spawn kick was dispatched; the immediate scheduled
        # nothing and the clock never moved.
        assert log == [(0.0, 99, 0)]

    def test_immediate_is_reused(self, env):
        assert env.immediate(1) is env.immediate(2)


class TestDetached:
    def test_detached_runs_to_completion(self, env):
        log = []

        def task(env):
            yield env.charge(2.0)
            log.append(env.now)

        env.detached(task(env))
        env.run()
        assert log == [2.0]
        assert env.tasks_spawned == 1
        assert env.processes_spawned == 0

    def test_task_driver_is_pooled(self, env):
        def task(env):
            yield env.charge(1.0)

        env.detached(task(env))
        env.run()
        assert len(env._task_pool) == 1
        driver = env._task_pool[-1]
        env.detached(task(env))
        assert not env._task_pool  # reused, not reallocated
        env.run()
        assert env._task_pool[-1] is driver

    def test_detached_failure_crashes_the_run(self, env):
        def task(env):
            yield env.charge(1.0)
            raise RuntimeError("boom")

        env.detached(task(env))
        with pytest.raises(RuntimeError, match="boom"):
            env.run()

    def test_detached_can_wait_on_regular_events(self, env):
        evt = env.event()
        got = []

        def task(env):
            got.append((yield evt))

        env.detached(task(env))
        evt.succeed("x")
        env.run()
        assert got == ["x"]


class TestConditionScale:
    def test_thousand_event_all_of(self, env):
        """Regression for the O(n^2) rescan: a 1000-child all_of must
        fire with the right value set (and in reasonable time)."""
        timeouts = [env.timeout(float(i % 7), value=i) for i in range(1000)]
        got = []

        def proc(env):
            result = yield env.all_of(timeouts)
            got.append(result)

        env.process(proc(env))
        env.run()
        assert len(got) == 1
        assert sorted(got[0].values()) == list(range(1000))

    def test_incremental_count_matches_rescan_semantics(self, env):
        """any_of over a mix of already-processed and pending children."""
        done = env.timeout(0.0, value="early")
        env.run(until=1.0)  # process `done`
        pending = env.timeout(5.0, value="late")
        got = []

        def proc(env):
            got.append((yield env.any_of([done, pending])))

        env.process(proc(env))
        env.run()
        assert got == [{done: "early"}]


class TestKernelCounters:
    def test_counters_accumulate(self, env):
        def proc(env):
            yield env.charge(1.0)
            yield env.timeout(1.0)

        env.process(proc(env))
        env.detached(proc(env))
        env.run()
        stats = env.kernel_stats()
        assert stats["processes_spawned"] == 1
        assert stats["tasks_spawned"] == 1
        assert stats["events_processed"] > 0
        assert stats["heap_peak"] >= 1
        assert stats["charges_created"] + stats["charges_reused"] >= 2
        assert stats["wall_seconds"] >= 0.0

    def test_module_totals_flush_on_run(self):
        from repro.sim import kernel_totals, reset_kernel_totals

        reset_kernel_totals()
        env = Environment()

        def proc(env):
            yield env.charge(1.0)

        env.process(proc(env))
        env.run()
        totals = kernel_totals()
        assert totals["events_processed"] == env.events_processed
        assert totals["processes_spawned"] == 1
        # A second run must not double-count the first run's events.
        env2 = Environment()
        env2.process(proc(env2))
        env2.run()
        combined = kernel_totals()
        assert combined["events_processed"] == (
            env.events_processed + env2.events_processed)
        assert combined["events_per_sec"] >= 0.0

    def test_format_kernel_stats_renders(self, env):
        from repro.sim.stats import format_kernel_stats

        def proc(env):
            yield env.charge(1.0)

        env.process(proc(env))
        env.run()
        text = format_kernel_stats(env.kernel_stats())
        assert "events processed" in text
        assert "events/sec" in text
