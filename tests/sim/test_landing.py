"""The struct-of-arrays landing table behind wheel-backend Channels.

The table's contract is bit-identity with the heap backend's
per-message ``defer(latency, _land)`` machinery, so most tests here
run a twin workload on both backends and compare every observable:
delivered item sequences, channel counters, and the kernel's
events-processed count.
"""

import pytest

from repro.sim import Environment, WheelEnvironment
from repro.sim.channel import Channel
from repro.sim.landing import _SOLO_LIMIT, numpy_available
from repro.sim.trace import Tracer

pytestmark = pytest.mark.skipif(not numpy_available(),
                                reason="landing table requires numpy")


def _twin(build):
    """Run *build(env, out)* under both backends; return the two outs."""
    outs = []
    for cls in (Environment, WheelEnvironment):
        env = cls()
        out = {}
        build(env, out)
        env.run()
        out["events_processed"] = env.events_processed
        outs.append(out)
    return outs


class TestBurstParity:
    def test_single_channel_burst(self):
        def build(env, out):
            chan = Channel(env, "burst", latency=2.0)
            got = out["items"] = []

            def pump(_e):
                for i in range(32):
                    chan.push(("msg", i), 64)

            def drain(_e):
                got.extend(chan.recv_batch())

            env.defer(1.0, pump)
            env.defer(4.0, drain)
            out["chan"] = chan

        heap, wheel = _twin(build)
        assert heap["items"] == wheel["items"]
        assert len(wheel["items"]) == 32
        for key in ("sent", "delivered", "dropped", "bytes_moved"):
            assert getattr(heap["chan"], key) == getattr(wheel["chan"], key)
        assert heap["events_processed"] == wheel["events_processed"]

    def test_interleaved_channels_break_batches(self):
        def build(env, out):
            a = Channel(env, "a", latency=1.0)
            b = Channel(env, "b", latency=1.5)
            got = out["items"] = []

            def pump(_e):
                for i in range(10):
                    a.push(("a", i))
                    b.push(("b", i))

            env.defer(1.0, pump)
            env.defer(5.0, lambda _e: got.extend(
                [("a", x) for x in a.recv_batch()]
                + [("b", x) for x in b.recv_batch()]))

        heap, wheel = _twin(build)
        assert heap["items"] == wheel["items"]
        assert heap["events_processed"] == wheel["events_processed"]

    def test_capacity_limited_drops(self):
        def build(env, out):
            chan = Channel(env, "small", capacity=5, latency=1.0)
            env.defer(1.0, lambda _e: [chan.push(i) for i in range(12)])
            out["chan"] = chan

        heap, wheel = _twin(build)
        for key in ("sent", "delivered", "dropped"):
            assert (getattr(heap["chan"], key)
                    == getattr(wheel["chan"], key)), key
        assert wheel["chan"].dropped == 7
        assert heap["events_processed"] == wheel["events_processed"]

    def test_sink_with_parked_getters(self):
        def build(env, out):
            chan = Channel(env, "got", latency=1.0)
            got = out["items"] = []

            def consumer(env):
                for _ in range(6):
                    item = yield chan.get()
                    got.append((env.now, item))

            env.process(consumer(env))
            env.defer(1.0, lambda _e: [chan.push(i) for i in range(6)])

        heap, wheel = _twin(build)
        assert heap["items"] == wheel["items"]
        assert heap["events_processed"] == wheel["events_processed"]

    def test_traced_channel_takes_slow_path(self):
        def build(env, out):
            env.tracer = Tracer(env, enabled=True, limit=64)
            chan = Channel(env, "wire", latency=1.0)
            env.defer(1.0, lambda _e: [chan.push(i) for i in range(4)])
            env.defer(3.0, lambda _e: chan.recv_batch())
            out["env"] = env

        heap, wheel = _twin(build)
        assert heap["env"].tracer.records == wheel["env"].tracer.records
        assert any(r[2] == "deliver" for r in wheel["env"].tracer.records)
        assert heap["events_processed"] == wheel["events_processed"]

    def test_fault_hook_binding_captured_at_stage(self):
        """Installing/removing a per-instance ``_land`` shadow between
        pushes must split the batch and use the binding each message was
        pushed under — exactly like the heap's bind-at-push defer."""
        def build(env, out):
            chan = Channel(env, "hooked", latency=2.0)
            dropped = out["dropped"] = []

            def hook(_event, chan=chan):
                dropped.append(chan._in_flight.popleft())
                chan.dropped += 1

            def pump(_e):
                chan.push("clean-1")
                chan._land = hook
                chan.push("faulted")
                del chan._land
                chan.push("clean-2")

            env.defer(1.0, pump)
            env.defer(5.0, lambda _e: out.setdefault("items",
                                                     chan.recv_batch()))
            out["chan"] = chan

        heap, wheel = _twin(build)
        assert heap["items"] == wheel["items"] == ["clean-1", "clean-2"]
        assert heap["dropped"] == wheel["dropped"] == ["faulted"]
        assert heap["chan"].dropped == wheel["chan"].dropped == 1
        assert heap["events_processed"] == wheel["events_processed"]


class TestAdaptiveBypass:
    def test_solo_channels_fall_back_to_defer(self):
        env = WheelEnvironment()
        chan = Channel(env, "solo", latency=1.0)

        def proc(env):
            for i in range(_SOLO_LIMIT + 5):
                chan.push(i)
                yield env.timeout(1.0)

        env.process(proc(env))
        env.run()
        assert chan._stage_off
        assert not chan._stage_bursts
        # Staging stopped once the limit was hit: later pushes deferred.
        assert env._landing.staged == _SOLO_LIMIT

    def test_bursty_channels_keep_staging(self):
        env = WheelEnvironment()
        chan = Channel(env, "bursty", latency=1.0)

        def proc(env):
            chan.push(0)
            chan.push(1)  # one real burst marks the channel sticky
            yield env.timeout(1.0)
            for i in range(_SOLO_LIMIT * 2):
                chan.push(i)
                yield env.timeout(1.0)

        env.process(proc(env))
        env.run()
        assert chan._stage_bursts
        assert not chan._stage_off
        assert env._landing.staged == _SOLO_LIMIT * 2 + 2


class TestIntrospection:
    def test_in_flight_views(self):
        env = WheelEnvironment()
        a = Channel(env, "a", latency=5.0)
        b = Channel(env, "b", latency=9.0)
        env.defer(1.0, lambda _e: ([a.push("x", 100) for _ in range(3)],
                                   b.push("y", 50)))

        def probe(_e):
            table = env._landing
            assert table.in_flight_count() == 4
            assert table.in_flight_count(a) == 3
            assert table.in_flight_bytes() == 350
            assert table.in_flight_bytes(b) == 50
            assert table.next_deadline() == 6.0
            assert table.per_channel_counts() == {"a": 3, "b": 1}

        env.defer(2.0, probe)
        env.run()
        table = env._landing
        assert table.in_flight_count() == 0
        assert table.stats()["staged"] == 4

    def test_vector_counters_track_bulk_landings(self):
        env = WheelEnvironment()
        chan = Channel(env, "fast", latency=1.0)
        env.defer(1.0, lambda _e: [chan.push(i) for i in range(16)])
        env.run()
        stats = env._landing.stats()
        assert stats["vector_batches"] == 1
        assert stats["vector_messages"] == 16
        assert len(chan._items) == 16

    def test_row_store_compaction_and_growth(self):
        env = WheelEnvironment()
        table = env._landing
        initial_rows = len(table._deadline)
        chan = Channel(env, "grow", latency=0.5)
        spray = initial_rows + 100

        def pump(env):
            for i in range(spray):
                chan.push(i)
                # introspect mid-flight so rows materialize while the
                # store wraps and compacts/grows
                if i % 257 == 0:
                    table.in_flight_count()
                if i % 63 == 0:
                    yield env.timeout(1.0)
                    chan.recv_batch()

        env.process(pump(env))
        env.run()
        assert table.staged >= spray
        assert table.in_flight_count() == 0


class TestRecvBatchFastPath:
    def test_bulk_drain_matches_item_loop(self):
        for cls in (Environment, WheelEnvironment):
            env = cls()
            chan = Channel(env, "q")
            for i in range(10):
                assert chan.try_put(i)
            assert chan.recv_batch(max_items=4) == [0, 1, 2, 3]
            assert chan.recv_batch() == [4, 5, 6, 7, 8, 9]
            assert chan.recv_batch() == []

    def test_bounded_channel_with_parked_putter_wakes(self):
        for cls in (Environment, WheelEnvironment):
            env = cls()
            chan = Channel(env, "bounded", capacity=2)
            done = []

            def producer(env):
                for i in range(4):
                    yield chan.put(i)
                done.append(env.now)

            def consumer(env):
                yield env.timeout(1.0)
                got = chan.recv_batch()
                yield env.timeout(1.0)
                got += chan.recv_batch()
                assert got == [0, 1, 2, 3]

            env.process(producer(env))
            env.process(consumer(env))
            env.run()
            assert done  # producer unblocked by the batched drain
