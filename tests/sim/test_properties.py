"""Property-based tests (hypothesis) on the simulation kernel."""

from hypothesis import given, settings, strategies as st

from repro.sim import Environment, LatencyRecorder, Resource, Store


@given(delays=st.lists(st.floats(min_value=0, max_value=1e6,
                                 allow_nan=False), min_size=1, max_size=40))
@settings(max_examples=60, deadline=None)
def test_events_fire_in_time_order(delays):
    env = Environment()
    fired = []

    def proc(env, delay):
        yield env.timeout(delay)
        fired.append(env.now)

    for delay in delays:
        env.process(proc(env, delay))
    env.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)


@given(items=st.lists(st.integers(), min_size=1, max_size=50),
       capacity=st.integers(min_value=1, max_value=10))
@settings(max_examples=60, deadline=None)
def test_store_preserves_fifo_under_any_capacity(items, capacity):
    env = Environment()
    store = Store(env, capacity=capacity)
    got = []

    def producer(env):
        for item in items:
            yield store.put(item)

    def consumer(env):
        for _ in items:
            got.append((yield store.get()))
            yield env.timeout(1)

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert got == items


@given(durations=st.lists(st.floats(min_value=0.1, max_value=100,
                                    allow_nan=False), min_size=1, max_size=30),
       capacity=st.integers(min_value=1, max_value=5))
@settings(max_examples=40, deadline=None)
def test_resource_never_exceeds_capacity(durations, capacity):
    env = Environment()
    res = Resource(env, capacity)
    active = [0]
    max_active = [0]

    def worker(env, duration):
        with res.request() as req:
            yield req
            active[0] += 1
            max_active[0] = max(max_active[0], active[0])
            yield env.timeout(duration)
            active[0] -= 1

    for duration in durations:
        env.process(worker(env, duration))
    env.run()
    assert max_active[0] <= capacity
    assert active[0] == 0
    assert res.in_use == 0


@given(durations=st.lists(st.floats(min_value=0.1, max_value=50,
                                    allow_nan=False), min_size=2, max_size=20))
@settings(max_examples=40, deadline=None)
def test_unit_resource_serializes_total_time(durations):
    """With capacity 1, total makespan == sum of the durations."""
    env = Environment()
    res = Resource(env, 1)

    def worker(env, duration):
        with res.request() as req:
            yield req
            yield env.timeout(duration)

    for duration in durations:
        env.process(worker(env, duration))
    env.run()
    assert env.now == sum(durations) or abs(env.now - sum(durations)) < 1e-6


@given(values=st.lists(st.floats(min_value=0, max_value=1e9,
                                 allow_nan=False), min_size=1, max_size=200))
@settings(max_examples=60, deadline=None)
def test_percentiles_bounded_and_monotone(values):
    env = Environment()
    rec = LatencyRecorder(env)
    for v in values:
        rec.record(v)
    p50, p90, p99 = rec.p50(), rec.p90(), rec.p99()
    assert min(values) <= p50 <= p90 <= p99 <= max(values)


@given(seed=st.integers(min_value=0, max_value=2**31),
       n=st.integers(min_value=1, max_value=20))
@settings(max_examples=30, deadline=None)
def test_simulation_is_deterministic(seed, n):
    """Two identical runs produce identical event traces."""

    def run_once():
        env = Environment()
        trace = []
        store = Store(env, capacity=3)

        def producer(env):
            for i in range(n):
                yield env.timeout((seed % 7) + 0.5)
                yield store.put(i)

        def consumer(env):
            for _ in range(n):
                item = yield store.get()
                trace.append((env.now, item))
                yield env.timeout(1.0)

        env.process(producer(env))
        env.process(consumer(env))
        env.run()
        return trace

    assert run_once() == run_once()
