"""Resource (counted slots + waiter queue) behaviour."""

import pytest

from repro.errors import SimulationError
from repro.sim import Environment, Resource


@pytest.fixture
def env():
    return Environment()


def hold(env, res, duration, log, name, priority=0):
    with res.request(priority=priority) as req:
        yield req
        log.append(("start", name, env.now))
        yield env.timeout(duration)
        log.append(("end", name, env.now))


class TestResource:
    def test_capacity_must_be_positive(self, env):
        with pytest.raises(SimulationError):
            Resource(env, 0)

    def test_serializes_at_capacity_one(self, env):
        res = Resource(env, 1)
        log = []
        env.process(hold(env, res, 5, log, "a"))
        env.process(hold(env, res, 3, log, "b"))
        env.run()
        assert log == [("start", "a", 0), ("end", "a", 5),
                       ("start", "b", 5), ("end", "b", 8)]

    def test_parallelism_at_capacity_two(self, env):
        res = Resource(env, 2)
        log = []
        for name in "abc":
            env.process(hold(env, res, 10, log, name))
        env.run()
        starts = {name: t for op, name, t in log if op == "start"}
        assert starts == {"a": 0, "b": 0, "c": 10}

    def test_fifo_order_among_equal_priorities(self, env):
        res = Resource(env, 1)
        log = []
        for name in "abcd":
            env.process(hold(env, res, 1, log, name))
        env.run()
        assert [name for op, name, _ in log if op == "start"] == list("abcd")

    def test_lower_priority_value_served_first(self, env):
        res = Resource(env, 1)
        log = []
        env.process(hold(env, res, 5, log, "first"))
        env.process(hold(env, res, 1, log, "normal", priority=0))
        env.process(hold(env, res, 1, log, "urgent", priority=-1))
        env.run()
        order = [name for op, name, _ in log if op == "start"]
        assert order == ["first", "urgent", "normal"]

    def test_release_is_idempotent(self, env):
        res = Resource(env, 1)

        def proc(env):
            req = res.request()
            yield req
            req.release()
            req.release()

        env.process(proc(env))
        env.run()
        assert res.in_use == 0

    def test_execute_helper(self, env):
        res = Resource(env, 1)

        def proc(env):
            yield from res.execute(7)
            return env.now

        p = env.process(proc(env))
        env.run()
        assert p.value == 7

    def test_utilization_tracked(self, env):
        res = Resource(env, 1)
        log = []
        env.process(hold(env, res, 10, log, "a"))
        env.run(until=20)
        assert res.utilization.mean() == pytest.approx(0.5)

    def test_counts_in_use_and_waiting(self, env):
        res = Resource(env, 1)
        log = []
        env.process(hold(env, res, 10, log, "a"))
        env.process(hold(env, res, 10, log, "b"))
        env.run(until=5)
        assert res.in_use == 1
        assert res.waiting == 1
