"""Deterministic per-component random streams."""

from repro.sim import RngRegistry


class TestRngRegistry:
    def test_same_name_same_stream(self):
        reg = RngRegistry(seed=7)
        s1 = reg.stream("component-a")
        s2 = reg.stream("component-a")
        assert s1 is s2

    def test_reproducible_across_registries(self):
        a = RngRegistry(seed=7)
        b = RngRegistry(seed=7)
        draws_a = [a.exponential("x", 1.0) for _ in range(5)]
        draws_b = [b.exponential("x", 1.0) for _ in range(5)]
        assert draws_a == draws_b

    def test_different_seeds_differ(self):
        a = RngRegistry(seed=1)
        b = RngRegistry(seed=2)
        assert a.uniform("x", 0, 1) != b.uniform("x", 0, 1)

    def test_streams_are_independent_of_creation_order(self):
        a = RngRegistry(seed=3)
        b = RngRegistry(seed=3)
        # Interleave stream creation differently; named draws must match.
        a.stream("first")
        draw_a = a.exponential("second", 1.0)
        b.stream("noise")
        b.stream("more-noise")
        draw_b = b.exponential("second", 1.0)
        assert draw_a == draw_b

    def test_helpers_cover_distributions(self):
        reg = RngRegistry(seed=11)
        assert reg.exponential("e", 2.0) > 0
        assert 0 <= reg.uniform("u", 0, 1) <= 1
        assert reg.lognormal("l", 0.0, 1.0) > 0
        assert 0 <= reg.integers("i", 0, 10) < 10
        assert reg.choice("c", ["a", "b"]) in ("a", "b")
