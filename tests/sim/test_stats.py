"""Measurement instruments."""

import math

import numpy as np
import pytest

from repro.sim import Counter, Environment, LatencyRecorder, RateMeter, TimeWeightedGauge


@pytest.fixture
def env():
    return Environment()


class TestLatencyRecorder:
    def test_percentiles_match_numpy(self, env):
        rec = LatencyRecorder(env)
        values = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0]
        for v in values:
            rec.record(v)
        assert rec.p50() == pytest.approx(np.percentile(values, 50))
        assert rec.p99() == pytest.approx(np.percentile(values, 99))
        assert rec.mean() == pytest.approx(np.mean(values))
        assert rec.min() == 1.0 and rec.max() == 9.0

    def test_empty_recorder_is_nan(self, env):
        rec = LatencyRecorder(env)
        assert math.isnan(rec.p50())
        assert math.isnan(rec.mean())

    def test_reset_discards_warmup(self, env):
        rec = LatencyRecorder(env)
        rec.record(1000.0)
        rec.reset()
        rec.record(2.0)
        assert rec.count == 1
        assert rec.p50() == 2.0

    def test_summary_keys(self, env):
        rec = LatencyRecorder(env)
        rec.record(1.0)
        summary = rec.summary()
        assert set(summary) == {"count", "mean", "p50", "p90", "p99",
                                "min", "max"}

    def test_record_many_matches_repeated_record(self, env):
        values = [3.0, 1.0, 4.0, 1.5, 5.0, 9.0]
        one = LatencyRecorder(env)
        for v in values:
            one.record(v)
        many = LatencyRecorder(env)
        many.record_many(np.array(values))
        assert many._samples == one._samples
        assert many.p99() == one.p99()
        assert many.snapshot() == one.snapshot()

    def test_record_many_respects_warmup_cut(self, env):
        rec = LatencyRecorder(env, start=10.0)
        rec.record_many([1.0, 2.0])   # env.now == 0 < start: dropped
        assert rec.count == 0

    def test_record_many_empty(self, env):
        rec = LatencyRecorder(env)
        rec.record_many([])
        assert rec.count == 0

    def test_start_argument_drops_warmup_samples(self, env):
        # The docstring-promised warmup cut: samples recorded while
        # env.now < start never enter the recorder.
        rec = LatencyRecorder(env, start=10.0)

        def proc(env):
            rec.record(999.0)          # t=0: warmup, dropped
            yield env.timeout(10)
            rec.record(5.0)            # t=10: measured

        env.process(proc(env))
        env.run()
        assert rec.count == 1
        assert rec.p50() == 5.0

    def test_reset_at_time_installs_new_cut(self, env):
        rec = LatencyRecorder(env)
        rec.record(999.0)
        rec.reset(at_time=20.0)        # cut ahead of the clock (t=0)
        rec.record(888.0)              # still warmup: env.now < 20
        assert rec.count == 0
        assert rec.start == 20.0

    def test_snapshot_is_mergeable_histogram(self, env):
        rec = LatencyRecorder(env)
        rec.record(100.0)
        snap = rec.snapshot()
        assert snap["kind"] == "histogram" and snap["count"] == 1
        other = LatencyRecorder(env)
        other.record(200.0)
        other.merge(snap)
        merged = other.snapshot()
        assert merged["count"] == 2
        # exact local stats are unaffected by foreign merges
        assert other.count == 1 and other.p50() == 200.0


class TestRateMeter:
    def test_rate_over_elapsed_time(self, env):
        meter = RateMeter(env)

        def proc(env):
            for _ in range(10):
                yield env.timeout(2)
                meter.tick()

        env.process(proc(env))
        env.run()  # drains at t=20, after the final tick
        assert meter.per_us() == pytest.approx(0.5)
        assert meter.per_sec() == pytest.approx(0.5e6)

    def test_reset_restarts_window(self, env):
        meter = RateMeter(env)
        meter.tick(100)
        env.run(until=10)
        meter.reset()
        env.run(until=20)
        meter.tick(5)
        assert meter.per_us() == pytest.approx(0.5)

    def test_zero_elapsed_is_nan(self, env):
        meter = RateMeter(env)
        assert math.isnan(meter.per_us())

    def test_reset_at_time_backdates_window(self, env):
        meter = RateMeter(env)
        meter.tick(100)
        env.run(until=10)
        meter.reset(at_time=5.0)       # warmup cut at t=5, reset at t=10
        env.run(until=25)
        meter.tick(10)
        assert meter.per_us() == pytest.approx(10 / 20.0)


class TestTimeWeightedGauge:
    def test_mean_weighs_by_time(self, env):
        gauge = TimeWeightedGauge(env)

        def proc(env):
            gauge.set(10)
            yield env.timeout(4)
            gauge.set(0)

        env.process(proc(env))
        env.run(until=8)
        assert gauge.mean() == pytest.approx(5.0)

    def test_max_tracked(self, env):
        gauge = TimeWeightedGauge(env)
        gauge.set(3)
        gauge.set(7)
        gauge.set(2)
        assert gauge.max() == 7

    def test_reset(self, env):
        gauge = TimeWeightedGauge(env)
        gauge.set(100)
        env.run(until=5)
        gauge.reset()
        env.run(until=10)
        assert gauge.mean() == pytest.approx(100)
        assert gauge.max() == 100

    def test_reset_at_time_backdates_window(self, env):
        gauge = TimeWeightedGauge(env)
        gauge.set(100)
        env.run(until=8)
        gauge.reset(at_time=4.0)
        env.run(until=12)
        snap = gauge.snapshot()
        assert snap["elapsed"] == pytest.approx(8.0)
        assert gauge.mean() == pytest.approx(100.0)


class TestCounter:
    def test_labelled_counts(self):
        counter = Counter()
        counter.inc("drops")
        counter.inc("drops", 2)
        counter.inc("sends")
        assert counter.get("drops") == 3
        assert counter.get("missing") == 0
        assert counter.as_dict() == {"drops": 3, "sends": 1}
