"""Store / PriorityStore channel behaviour."""

import pytest

from repro.errors import SimulationError
from repro.sim import Environment, PriorityStore, Store


@pytest.fixture
def env():
    return Environment()


class TestStore:
    def test_capacity_must_be_positive(self, env):
        with pytest.raises(SimulationError):
            Store(env, capacity=0)

    def test_fifo_order(self, env):
        store = Store(env)
        got = []

        def producer(env):
            for i in range(5):
                yield store.put(i)

        def consumer(env):
            for _ in range(5):
                got.append((yield store.get()))

        env.process(producer(env))
        env.process(consumer(env))
        env.run()
        assert got == [0, 1, 2, 3, 4]

    def test_get_blocks_until_put(self, env):
        store = Store(env)

        def consumer(env):
            item = yield store.get()
            return (env.now, item)

        def producer(env):
            yield env.timeout(9)
            yield store.put("late")

        c = env.process(consumer(env))
        env.process(producer(env))
        env.run()
        assert c.value == (9.0, "late")

    def test_put_blocks_when_full(self, env):
        store = Store(env, capacity=1)

        def producer(env):
            yield store.put(1)
            yield store.put(2)  # blocks until the consumer frees a slot
            return env.now

        def consumer(env):
            yield env.timeout(5)
            yield store.get()

        p = env.process(producer(env))
        env.process(consumer(env))
        env.run()
        assert p.value == 5.0

    def test_try_put_respects_capacity(self, env):
        store = Store(env, capacity=2)
        assert store.try_put(1)
        assert store.try_put(2)
        assert not store.try_put(3)
        env.run()
        assert len(store) == 2

    def test_try_put_hands_to_waiting_getter(self, env):
        store = Store(env, capacity=1)

        def consumer(env):
            item = yield store.get()
            return item

        c = env.process(consumer(env))
        env.run(until=1)
        assert store.try_put("direct")
        env.run()
        assert c.value == "direct"

    def test_try_get(self, env):
        store = Store(env)
        assert store.try_get() is None
        store.try_put("x")
        env.run()
        assert store.try_get() == "x"
        assert store.try_get() is None

    def test_total_put_counts(self, env):
        store = Store(env)
        for i in range(3):
            store.try_put(i)
        env.run()
        assert store.total_put == 3

    def test_items_snapshot(self, env):
        store = Store(env)
        store.try_put("a")
        store.try_put("b")
        assert store.items == ("a", "b")


class TestPriorityStore:
    def test_pops_smallest_first(self, env):
        store = PriorityStore(env)
        got = []

        def producer(env):
            for value in [5, 1, 4, 2]:
                yield store.put(value)

        def consumer(env):
            yield env.timeout(1)
            for _ in range(4):
                got.append((yield store.get()))

        env.process(producer(env))
        env.process(consumer(env))
        env.run()
        assert got == [1, 2, 4, 5]

    def test_ties_broken_by_insertion_order(self, env):
        store = PriorityStore(env)
        store.try_put((1, "first"))
        store.try_put((1, "second"))
        env.run()
        assert store.try_get() == (1, "first")
        assert store.try_get() == (1, "second")
