"""Tracing utilities and units helpers."""

import warnings

import pytest

from repro import units
from repro.sim import Environment, NullTracer, Tracer


class TestTracer:
    def test_disabled_by_default(self):
        env = Environment()
        tracer = Tracer(env)
        tracer.emit("nic", "rx")
        assert tracer.records == []

    def test_records_when_enabled(self):
        env = Environment()
        tracer = Tracer(env, enabled=True)
        tracer.emit("nic", "rx", detail="64B")
        env.run(until=5)
        tracer.emit("gpu", "launch")
        assert len(tracer.records) == 2
        assert tracer.records[1][0] == 5

    def test_record_schema_carries_msg_id(self):
        env = Environment()
        tracer = Tracer(env, enabled=True)
        tracer.emit("wire->10.0.0.1", "deliver", 17, "udp")
        when, channel, event, msg_id, detail = tracer.records[0]
        assert when == 0.0
        assert channel == "wire->10.0.0.1"
        assert event == "deliver"
        assert msg_id == 17
        assert detail == "udp"

    def test_filter(self):
        env = Environment()
        tracer = Tracer(env, enabled=True)
        tracer.emit("nic", "rx")
        tracer.emit("nic", "tx")
        tracer.emit("gpu", "rx")
        assert len(tracer.filter(channel="nic")) == 2
        assert len(tracer.filter(event="rx")) == 2
        assert len(tracer.filter(channel="gpu", event="rx")) == 1
        assert len(tracer.filter(contains="n")) == 2

    def test_limit_counts_drops(self):
        env = Environment()
        tracer = Tracer(env, enabled=True, limit=2)
        for _ in range(5):
            tracer.emit("c", "e")
        assert len(tracer.records) == 2
        assert tracer.dropped == 3

    def test_format_warns_once_on_overflow(self):
        env = Environment()
        tracer = Tracer(env, enabled=True, limit=1)
        tracer.emit("c", "e")
        tracer.emit("c", "e")
        with pytest.warns(RuntimeWarning, match="dropped 1 records"):
            out = tracer.format()
        assert "1 records dropped" in out
        # The warning fires only once; the overflow line stays.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert "records dropped" in tracer.format()

    def test_format(self):
        env = Environment()
        tracer = Tracer(env, enabled=True)
        tracer.emit("nic", "rx", 7, "abc")
        assert "nic" in tracer.format()
        assert "abc" in tracer.format()
        assert "7" in tracer.format()

    def test_null_tracer_is_inert(self):
        tracer = NullTracer()
        tracer.emit("x", "y")
        assert tracer.filter() == []
        assert not tracer.enabled
        assert tracer.dropped == 0


class TestUnits:
    def test_time_constants(self):
        assert units.MS == 1000 * units.US
        assert units.SEC == 1000 * units.MS
        assert units.NS == units.US / 1000

    def test_gbps(self):
        # 8 Gb/s == 1 GB/s == 1000 bytes/us
        assert units.gbps(8) == pytest.approx(1000.0)

    def test_gbytes_per_sec(self):
        assert units.gbytes_per_sec(1) == pytest.approx(1000.0)

    def test_mpps(self):
        assert units.mpps(1) == pytest.approx(1.0)

    def test_round_trip_rate_helpers(self):
        assert units.to_krps(units.per_sec(250000)) == pytest.approx(250.0)
