"""Tracing utilities and units helpers."""

import pytest

from repro import units
from repro.sim import Environment, NullTracer, Tracer


class TestTracer:
    def test_disabled_by_default(self):
        env = Environment()
        tracer = Tracer(env)
        tracer.emit("nic", "rx")
        assert tracer.records == []

    def test_records_when_enabled(self):
        env = Environment()
        tracer = Tracer(env, enabled=True)
        tracer.emit("nic", "rx", detail="64B")
        env.run(until=5)
        tracer.emit("gpu", "launch")
        assert len(tracer.records) == 2
        assert tracer.records[1][0] == 5

    def test_filter(self):
        env = Environment()
        tracer = Tracer(env, enabled=True)
        tracer.emit("nic", "rx")
        tracer.emit("nic", "tx")
        tracer.emit("gpu", "rx")
        assert len(tracer.filter(component="nic")) == 2
        assert len(tracer.filter(event="rx")) == 2
        assert len(tracer.filter(component="gpu", event="rx")) == 1

    def test_limit(self):
        env = Environment()
        tracer = Tracer(env, enabled=True, limit=2)
        for _ in range(5):
            tracer.emit("c", "e")
        assert len(tracer.records) == 2

    def test_format(self):
        env = Environment()
        tracer = Tracer(env, enabled=True)
        tracer.emit("nic", "rx", detail="abc")
        assert "nic" in tracer.format()
        assert "abc" in tracer.format()

    def test_null_tracer_is_inert(self):
        tracer = NullTracer()
        tracer.emit("x", "y")
        assert tracer.filter() == []
        assert not tracer.enabled


class TestUnits:
    def test_time_constants(self):
        assert units.MS == 1000 * units.US
        assert units.SEC == 1000 * units.MS
        assert units.NS == units.US / 1000

    def test_gbps(self):
        # 8 Gb/s == 1 GB/s == 1000 bytes/us
        assert units.gbps(8) == pytest.approx(1000.0)

    def test_gbytes_per_sec(self):
        assert units.gbytes_per_sec(1) == pytest.approx(1000.0)

    def test_mpps(self):
        assert units.mpps(1) == pytest.approx(1.0)

    def test_round_trip_rate_helpers(self):
        assert units.to_krps(units.per_sec(250000)) == pytest.approx(250.0)
