"""The calendar-queue backend against the heap determinism oracle.

Every test here replays the *same* workload on a heap
:class:`Environment` and a :class:`WheelEnvironment` and asserts the
observable dispatch sequences are identical — the wheel's entire value
proposition rests on being a drop-in, bit-identical scheduler.
"""

import random

import pytest

from repro.errors import SimulationError
from repro.sim import (
    Environment,
    Interrupt,
    URGENT,
    WheelEnvironment,
    make_environment,
)
from repro.sim.environment import EmptySchedule

BACKENDS = (Environment, WheelEnvironment)


def _replay(build):
    """Run *build* under both backends; return their (now, tag) logs."""
    logs = []
    for cls in BACKENDS:
        env = cls()
        log = []
        build(env, log)
        env.run()
        logs.append(log)
    return logs


class TestDispatchParity:
    def test_defer_and_charge_interleave(self):
        def build(env, log):
            for delay in (3.0, 1.0, 2.0, 1.0, 0.0):
                env.defer(delay, lambda _e, d=delay: log.append((env.now, d)))
            env.charge(1.5).callbacks.append(lambda e: log.append((env.now, "c")))

        heap_log, wheel_log = _replay(build)
        assert heap_log == wheel_log

    def test_urgent_beats_normal_at_same_time(self):
        def build(env, log):
            env.defer(1.0, lambda _e: log.append("normal"))
            env.defer(1.0, lambda _e: log.append("urgent"), priority=URGENT)

        heap_log, wheel_log = _replay(build)
        assert heap_log == wheel_log == ["urgent", "normal"]

    def test_far_future_overflow_entries(self):
        """Delays beyond the 4096-bucket window traverse the overflow
        heap and must still dispatch in (time, eid) order."""
        window = WheelEnvironment.NBUCKETS * WheelEnvironment.WIDTH

        def build(env, log):
            for delay in (window * 3, 1.0, window + 0.5, window * 2, 2.0):
                env.defer(delay, lambda _e, d=delay: log.append((env.now, d)))

        heap_log, wheel_log = _replay(build)
        assert heap_log == wheel_log
        assert [t for t, _ in wheel_log] == sorted(t for t, _ in wheel_log)

    def test_processes_and_interrupts(self):
        def build(env, log):
            def worker(env, name):
                try:
                    yield env.timeout(5.0)
                    log.append((env.now, name, "done"))
                except Interrupt as exc:
                    log.append((env.now, name, "interrupted", exc.cause))

            victim = env.process(worker(env, "victim"))
            env.process(worker(env, "bystander"))

            def interrupter(env):
                yield env.timeout(2.0)
                victim.interrupt("boom")

            env.process(interrupter(env))

        heap_log, wheel_log = _replay(build)
        assert heap_log == wheel_log

    def test_zero_delay_chains_at_one_timestamp(self):
        def build(env, log):
            def chain(_e, depth=0):
                log.append((env.now, depth))
                if depth < 50:
                    env.defer(0.0, lambda e, d=depth + 1: chain(e, d))

            env.defer(1.0, chain)

        heap_log, wheel_log = _replay(build)
        assert heap_log == wheel_log
        assert len(wheel_log) == 51


class TestRandomizedStress:
    @pytest.mark.parametrize("seed", [1, 7, 42, 1234])
    def test_random_op_script_parity(self, seed):
        """A randomized fixed-seed op mix (defers, charges, timeouts,
        processes, re-arming callbacks, occasional far-future jumps)
        dispatches identically on both backends."""
        def build(env, log):
            rng = random.Random(seed)
            state = {"left": 600}

            def fire(tag):
                log.append((tag, env.now))
                state["left"] -= 1
                if state["left"] > 0:
                    arm()

            def arm():
                op = rng.random()
                delay = rng.choice((0.0, 0.1, 0.9, 1.0, 3.7, 17.0, 5000.0))
                if op < 0.45:
                    env.defer(delay, lambda _e: fire("d"))
                elif op < 0.8:
                    env.charge(delay).callbacks.append(lambda _e: fire("c"))
                else:
                    def proc(env, delay=delay):
                        yield env.timeout(delay)
                        fire("p")

                    env.process(proc(env))

            # Bounded run: each firing re-arms once, ~600 events total.
            for _ in range(8):
                arm()

        heap_log, wheel_log = _replay(build)
        assert heap_log == wheel_log

    @pytest.mark.parametrize("seed", [3, 99])
    def test_step_and_peek_parity(self, seed):
        rng_delays = random.Random(seed)
        delays = [rng_delays.choice((0.0, 0.5, 1.0, 2.5, 4097.0))
                  for _ in range(200)]
        logs = []
        for cls in BACKENDS:
            env = cls()
            log = []
            for delay in delays:
                env.defer(delay, lambda _e, d=delay: log.append((env.now, d)))
            while True:
                horizon = env.peek()
                if horizon == float("inf"):
                    break
                env.step()
                log.append(("peeked", horizon))
            logs.append(log)
        assert logs[0] == logs[1]

    def test_step_raises_empty_schedule(self):
        env = WheelEnvironment()
        with pytest.raises(EmptySchedule):
            env.step()


class TestWheelSpecifics:
    def test_negative_initial_time_rejected(self):
        with pytest.raises(SimulationError):
            WheelEnvironment(initial_time=-1.0)
        # The heap backend has no such restriction.
        assert Environment(initial_time=-1.0).now == -1.0

    def test_run_until_then_resume(self):
        for cls in BACKENDS:
            env = cls()
            seen = []
            env.defer(1.0, lambda _e: seen.append(env.now))
            env.defer(5.0, lambda _e: seen.append(env.now))
            env.run(until=3.0)
            assert seen == [1.0]
            assert env.now == 3.0
            env.run()
            assert seen == [1.0, 5.0]

    def test_events_processed_parity(self):
        counts = []
        for cls in BACKENDS:
            env = cls()

            def pinger(env):
                for _ in range(20):
                    yield env.timeout(0.7)

            env.process(pinger(env))
            env.defer(3.0, lambda _e: None)
            env.run(until=30.0)
            counts.append(env.events_processed)
        assert counts[0] == counts[1]

    def test_make_environment_backend_selection(self):
        assert type(make_environment(backend="heap")) is Environment
        assert type(make_environment(backend="wheel")) is WheelEnvironment

    def test_kernel_stats_carry_backend_and_landing(self):
        env = WheelEnvironment()
        stats = env.kernel_stats()
        assert stats["backend"] == "wheel"
        if env._landing is not None:
            assert "landing" in stats
        heap_stats = Environment().kernel_stats()
        assert heap_stats["backend"] == "heap"
        assert "landing" not in heap_stats
