"""The ``repro.campaign/1`` document schema (repro/telemetry/export.py)."""

import json

import pytest

from repro.telemetry import (CAMPAIGN_SCHEMA, dump_campaign, dumps_campaign,
                             load_campaign)


def _entry(exp_id="ABL-X"):
    return {
        "exp_id": exp_id,
        "slug": "toy_study",
        "title": "toy",
        "paper_ref": "test",
        "seed": 42,
        "fast": True,
        "metric": "krps",
        "higher_is_better": True,
        "baseline": "on",
        "variants": [
            {"token": "on", "run_id": "a" * 12,
             "assignment": {"k": "on"}, "baseline": True,
             "row": {"krps": 3.5}, "score": 3.5},
            {"token": "off", "run_id": "b" * 12,
             "assignment": {"k": "off"}, "baseline": False,
             "row": {"krps": 2.5}, "score": 2.5},
        ],
        "importance": [
            {"component": "c", "knob": "k", "baseline": "'on'",
             "variants": ["off"], "scores": {"off": 2.5},
             "importance": 0.2857, "harmful": False,
             "signals": {"goodput": -0.3, "p99_us": None,
                         "kernel_events": -0.1, "core_burn": None}},
        ],
        "notes": ["a note"],
    }


class TestRoundTrip:
    def test_dump_and_load(self, tmp_path):
        path = str(tmp_path / "campaign.json")
        dump_campaign([_entry()], path, meta={"sim_backend": "heap"})
        doc = load_campaign(path)
        assert doc["schema"] == CAMPAIGN_SCHEMA
        assert doc["meta"] == {"sim_backend": "heap"}
        assert doc["campaigns"] == [_entry()]

    def test_dumps_is_valid_json_with_schema_first(self):
        text = dumps_campaign([_entry()])
        doc = json.loads(text)
        assert list(doc)[0] == "schema"
        assert doc["schema"] == "repro.campaign/1"

    def test_load_accepts_file_object(self, tmp_path):
        path = tmp_path / "campaign.json"
        path.write_text(dumps_campaign([_entry()]))
        with open(str(path)) as fh:
            doc = load_campaign(fh)
        assert doc["campaigns"][0]["exp_id"] == "ABL-X"


class TestValidation:
    def test_wrong_schema_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": "repro.telemetry/1",
                                    "campaigns": []}))
        with pytest.raises(ValueError):
            load_campaign(str(path))

    def test_missing_campaigns_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": CAMPAIGN_SCHEMA}))
        with pytest.raises(ValueError):
            load_campaign(str(path))

    def test_entry_missing_fields_rejected(self, tmp_path):
        entry = _entry()
        del entry["importance"]
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": CAMPAIGN_SCHEMA,
                                    "campaigns": [entry]}))
        with pytest.raises(ValueError) as err:
            load_campaign(str(path))
        assert "importance" in str(err.value)

    def test_engine_documents_load_back(self, tmp_path):
        # the real producer: a CampaignOutcome document must satisfy the
        # loader's schema checks
        from repro import telemetry
        from repro.experiments.ablations import coalescing_study

        with telemetry.scope():
            outcome = coalescing_study.run(fast=True, seed=42)
        path = str(tmp_path / "campaign.json")
        dump_campaign([outcome.to_doc()], path)
        doc = load_campaign(path)
        assert doc["campaigns"][0]["exp_id"] == "ABL-CO"
