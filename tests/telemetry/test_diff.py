"""Snapshot diffing (repro/telemetry/diff.py)."""

import pytest

from repro.telemetry import LogHistogram, diff_snapshots, relative_delta, \
    scalar_of


def _hist_snap(values):
    hist = LogHistogram()
    for v in values:
        hist.record(v)
    return hist.snapshot()


class TestScalarOf:
    def test_counter_and_peak(self):
        assert scalar_of({"kind": "counter", "value": 7}) == 7
        assert scalar_of({"kind": "peak", "value": 3}) == 3

    def test_labelled_sums_values(self):
        snap = {"kind": "labelled", "values": {"a": 2, "b": 5}}
        assert scalar_of(snap) == 7

    def test_rate_uses_count(self):
        assert scalar_of({"kind": "rate", "count": 9,
                          "elapsed": 100.0}) == 9

    def test_gauge_time_weighted_mean(self):
        snap = {"kind": "gauge", "area": 50.0, "elapsed": 100.0, "max": 2.0}
        assert scalar_of(snap) == pytest.approx(0.5)
        assert scalar_of({"kind": "gauge", "area": 1.0, "elapsed": 0.0,
                          "max": 0.0}) == 0.0

    def test_histogram_p99(self):
        snap = _hist_snap([10.0] * 99 + [1000.0])
        hist = LogHistogram()
        hist.merge(snap)
        assert scalar_of(snap) == pytest.approx(hist.p99())

    def test_empty_histogram_zero(self):
        assert scalar_of(_hist_snap([])) == 0.0

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            scalar_of({"kind": "mystery"})


class TestRelativeDelta:
    def test_basic(self):
        assert relative_delta(100.0, 110.0) == pytest.approx(0.10)
        assert relative_delta(100.0, 90.0) == pytest.approx(-0.10)
        assert relative_delta(-100.0, -90.0) == pytest.approx(0.10)

    def test_undefined_cases_none(self):
        assert relative_delta(0, 5) is None
        assert relative_delta(float("nan"), 5) is None
        assert relative_delta(5, float("nan")) is None
        assert relative_delta(None, 5) is None
        assert relative_delta("x", 5) is None


class TestDiffSnapshots:
    def test_common_name_diffed(self):
        base = {"a": {"kind": "counter", "value": 10}}
        other = {"a": {"kind": "counter", "value": 15}}
        diff = diff_snapshots(base, other)
        entry = diff["a"]
        assert entry["base"] == 10 and entry["other"] == 15
        assert entry["delta"] == 5
        assert entry["rel"] == pytest.approx(0.5)

    def test_one_sided_names_diff_against_zero(self):
        base = {"only.base": {"kind": "counter", "value": 4}}
        other = {"only.other": {"kind": "counter", "value": 6}}
        diff = diff_snapshots(base, other)
        assert diff["only.base"]["delta"] == -4
        assert diff["only.other"]["delta"] == 6
        assert diff["only.other"]["rel"] is None  # zero baseline

    def test_prefix_filter(self):
        base = {"net.a": {"kind": "counter", "value": 1},
                "sim.b": {"kind": "counter", "value": 2}}
        diff = diff_snapshots(base, base, prefix="net")
        assert set(diff) == {"net.a"}

    def test_kind_clash_rejected(self):
        base = {"a": {"kind": "counter", "value": 1}}
        other = {"a": {"kind": "rate", "count": 1, "elapsed": 1.0}}
        with pytest.raises(ValueError):
            diff_snapshots(base, other)

    def test_histogram_extras(self):
        base = {"lat": _hist_snap([10.0] * 10)}
        other = {"lat": _hist_snap([10.0] * 10 + [500.0] * 2)}
        entry = diff_snapshots(base, other)["lat"]
        assert entry["count"] == 2
        assert entry["p99"] > 0
        assert "p50" in entry

    def test_first_seen_order_preserved(self):
        base = {"z": {"kind": "counter", "value": 1},
                "a": {"kind": "counter", "value": 1}}
        other = {"m": {"kind": "counter", "value": 1}}
        assert list(diff_snapshots(base, other)) == ["z", "a", "m"]
