"""Export surface: pretty tables, the JSON schema, and the CLI shim."""

import json

import pytest

from repro.telemetry import (
    MetricsRegistry,
    SCHEMA,
    dump_metrics,
    dumps_metrics,
    format_snapshot,
    load_metrics,
)


def sample_snapshot():
    reg = MetricsRegistry()
    reg.counter("sim.kernel.events_processed").inc(1234)
    reg.peak("mqueue.q0.depth").record(17)
    reg.histogram("net.client.10.0.9.1.latency").record(250.0)
    return reg.snapshot()


class TestJsonSchema:
    def test_round_trip_preserves_snapshot(self, tmp_path):
        snap = sample_snapshot()
        path = tmp_path / "metrics.json"
        dump_metrics(snap, str(path))
        assert load_metrics(str(path)) == snap

    def test_dumps_carries_schema_tag(self):
        blob = json.loads(dumps_metrics(sample_snapshot()))
        assert blob["schema"] == SCHEMA
        assert "metrics" in blob

    def test_wrong_schema_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": "somebody-else/9",
                                    "metrics": {}}))
        with pytest.raises(ValueError):
            load_metrics(str(path))

    def test_schemaless_blob_rejected(self, tmp_path):
        path = tmp_path / "bare.json"
        path.write_text(json.dumps({"rows": []}))
        with pytest.raises(ValueError):
            load_metrics(str(path))


class TestFormatting:
    def test_format_snapshot_lists_every_name(self):
        text = format_snapshot(sample_snapshot())
        assert "sim.kernel.events_processed" in text
        assert "mqueue.q0.depth" in text
        assert "net.client.10.0.9.1.latency" in text
        assert "1,234" in text or "1234" in text

    def test_format_snapshot_prefix_filter(self):
        text = format_snapshot(sample_snapshot(), prefix="mqueue")
        assert "mqueue.q0.depth" in text
        assert "sim.kernel" not in text

    def test_kernel_stats_shim_still_importable_from_sim(self):
        # The CLI-facing home moved to telemetry.export; sim.stats keeps
        # a compatibility re-export.
        from repro.sim.stats import format_kernel_stats as via_sim
        from repro.telemetry.export import format_kernel_stats as via_tel
        assert via_sim is via_tel
        text = via_tel({"events_processed": 10, "processes_spawned": 1,
                        "tasks_spawned": 2, "charges_created": 3,
                        "charges_reused": 1, "heap_peak": 4,
                        "wall_seconds": 0.5, "events_per_sec": 20.0})
        assert "events processed" in text
