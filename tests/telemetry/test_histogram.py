"""The mergeable log-bucketed histogram (ISSUE 4's tentpole datatype).

Integer-valued samples are used for the merge-order tests: their float
sums stay exact well below 2**53, so associativity/commutativity can be
asserted as *equality*, not approximation.
"""

import json

import numpy as np
import pytest

from repro.telemetry import LogHistogram


def fill(values):
    hist = LogHistogram()
    for v in values:
        hist.record(v)
    return hist


def shards(rng, n_shards=6, lo=1, hi=10 ** 7, per_shard=300):
    return [rng.integers(lo, hi, size=per_shard).astype(float)
            for _ in range(n_shards)]


class TestLayout:
    def test_layout_is_fixed(self):
        assert LogHistogram.BUCKETS_PER_DECADE == 16
        assert LogHistogram.NBUCKETS == (LogHistogram.MAX_EXP
                                         - LogHistogram.MIN_EXP) * 16
        assert LogHistogram.MAX_REL_ERROR == pytest.approx(
            10 ** (1 / 32) - 1)

    def test_out_of_range_clamps_to_edge_buckets(self):
        assert LogHistogram.bucket_index(1e-300) == 0
        assert LogHistogram.bucket_index(1e300) == LogHistogram.NBUCKETS - 1

    def test_nonpositive_goes_to_zeros_bucket(self):
        hist = fill([0.0, -3.0, 5.0])
        snap = hist.snapshot()
        assert snap["zeros"] == 2
        assert snap["count"] == 3
        assert snap["min"] == -3.0

    def test_record_many_matches_record(self):
        values = [0.0, 0.5, 1.0, 2.5, 99.0, 1e-9, 1e9]
        bulk = LogHistogram()
        bulk.record_many(values)
        assert bulk.snapshot() == fill(values).snapshot()


class TestMergeAlgebra:
    def test_merge_is_commutative(self):
        rng = np.random.default_rng(7)
        a, b = (fill(s) for s in shards(rng, n_shards=2))
        ab = LogHistogram()
        ab.merge(a.snapshot())
        ab.merge(b.snapshot())
        ba = LogHistogram()
        ba.merge(b.snapshot())
        ba.merge(a.snapshot())
        assert ab.snapshot() == ba.snapshot()

    def test_merge_is_associative(self):
        rng = np.random.default_rng(11)
        parts = shards(rng, n_shards=6)
        snaps = [fill(s).snapshot() for s in parts]
        # (((s0+s1)+s2)+...) vs pairwise tree merges vs reversed order:
        # the fixed bucket layout makes them all land on the same state.
        left = LogHistogram()
        for snap in snaps:
            left.merge(snap)
        tree_pairs = []
        for i in range(0, len(snaps), 2):
            node = LogHistogram()
            node.merge(snaps[i])
            node.merge(snaps[i + 1])
            tree_pairs.append(node.snapshot())
        tree = LogHistogram()
        for snap in reversed(tree_pairs):
            tree.merge(snap)
        assert left.snapshot() == tree.snapshot()

    def test_merged_equals_single_pass(self):
        rng = np.random.default_rng(13)
        parts = shards(rng, n_shards=4)
        merged = LogHistogram()
        for part in parts:
            merged.merge(fill(part).snapshot())
        assert merged.snapshot() == fill(np.concatenate(parts)).snapshot()


class TestPercentiles:
    @pytest.mark.parametrize("dist", ["uniform", "lognormal", "bimodal"])
    def test_parity_with_numpy_lower(self, dist):
        rng = np.random.default_rng(23)
        if dist == "uniform":
            values = rng.uniform(1.0, 1e5, size=5000)
        elif dist == "lognormal":
            values = np.exp(rng.normal(4.0, 2.0, size=5000))
        else:
            values = np.concatenate([rng.uniform(1, 10, 2500),
                                     rng.uniform(1e4, 1e5, 2500)])
        hist = LogHistogram()
        hist.record_many(values)
        for q in (10, 50, 90, 99, 99.9):
            exact = float(np.percentile(values, q, method="lower"))
            approx = hist.percentile(q)
            assert approx == pytest.approx(
                exact, rel=LogHistogram.MAX_REL_ERROR)

    def test_zeros_dominate_low_percentiles(self):
        hist = fill([0.0] * 90 + [100.0] * 10)
        assert hist.percentile(50) == 0.0
        assert hist.percentile(95) == pytest.approx(100.0, rel=0.08)

    def test_empty_is_nan(self):
        import math
        assert math.isnan(LogHistogram().percentile(50))
        assert math.isnan(LogHistogram().mean())


class TestSnapshotForm:
    def test_snapshot_survives_json_round_trip(self):
        rng = np.random.default_rng(3)
        hist = LogHistogram()
        hist.record_many(rng.integers(1, 10 ** 6, 500).astype(float))
        snap = hist.snapshot()
        assert json.loads(json.dumps(snap)) == snap

    def test_reset_zeroes_in_place(self):
        hist = fill([1.0, 10.0])
        alias = hist
        hist.reset()
        assert alias.count == 0 and alias.buckets == {} and alias.min is None
