"""Instrument protocol: kind / snapshot / merge / reset(at_time)."""

import math

import pytest

from repro.telemetry import (
    Counter,
    DerivedRatio,
    LabelledCounter,
    LogHistogram,
    PeakGauge,
    PullCounter,
    PullPeak,
    RateStat,
    RatioHolder,
    TimeWeightedGauge,
    materialize,
)


class TestCounter:
    def test_inc_and_snapshot(self):
        c = Counter()
        c.inc()
        c.inc(4)
        assert c.value == 5
        assert c.snapshot() == {"kind": "counter", "value": 5}

    def test_merge_adds(self):
        c = Counter()
        c.inc(2)
        c.merge({"kind": "counter", "value": 40})
        assert c.value == 42

    def test_reset_in_place(self):
        c = Counter()
        alias = c  # cached reference must stay valid across reset
        c.inc(9)
        c.reset()
        assert alias.value == 0


class TestPeakGauge:
    def test_tracks_max(self):
        p = PeakGauge()
        p.record(3)
        p.record(7)
        p.record(5)
        assert p.snapshot() == {"kind": "peak", "value": 7}

    def test_merge_takes_max(self):
        p = PeakGauge()
        p.record(7)
        p.merge({"kind": "peak", "value": 5})
        assert p.value == 7
        p.merge({"kind": "peak", "value": 11})
        assert p.value == 11


class TestLabelledCounter:
    def test_labels_independent(self):
        c = LabelledCounter()
        c.inc("drops")
        c.inc("drops", 2)
        c.inc("sends")
        assert c.get("drops") == 3
        assert c.as_dict() == {"drops": 3, "sends": 1}

    def test_merge_unions_labels(self):
        c = LabelledCounter()
        c.inc("a")
        c.merge({"kind": "labelled", "values": {"a": 2, "b": 5}})
        assert c.as_dict() == {"a": 3, "b": 5}


class TestPullInstruments:
    def test_pull_counter_reads_live_state(self):
        state = {"hits": 0}
        c = PullCounter(lambda: state["hits"])
        state["hits"] = 7
        assert c.value == 7
        assert c.snapshot()["value"] == 7

    def test_reset_captures_baseline(self):
        state = {"hits": 10}
        c = PullCounter(lambda: state["hits"])
        c.reset()  # warmup cut: forget the first 10
        state["hits"] = 25
        assert c.value == 15

    def test_merge_accumulates_on_top_of_live(self):
        state = {"hits": 1}
        c = PullCounter(lambda: state["hits"])
        c.merge({"kind": "counter", "value": 100})
        assert c.value == 101

    def test_pull_peak_max_of_live_and_merged(self):
        state = {"depth": 3}
        p = PullPeak(lambda: state["depth"])
        assert p.value == 3
        p.merge({"kind": "peak", "value": 8})
        assert p.value == 8
        state["depth"] = 12
        assert p.value == 12


class TestTimeWeightedGauge:
    def fake_clock(self):
        clock = {"now": 0.0}
        return clock, (lambda: clock["now"])

    def test_mean_weighs_by_time(self):
        clock, tick = self.fake_clock()
        g = TimeWeightedGauge(clock=tick)
        g.set(10)
        clock["now"] = 4.0
        g.set(0)
        clock["now"] = 8.0
        assert g.mean() == pytest.approx(5.0)
        assert g.max() == 10

    def test_reset_at_time_backdates_window(self):
        clock, tick = self.fake_clock()
        g = TimeWeightedGauge(clock=tick)
        g.set(100)
        clock["now"] = 6.0
        g.reset(at_time=2.0)  # warmup cut at t=2, reset ran at t=6
        clock["now"] = 12.0
        # Value held at 100 since the cut: mean over [2, 12] is 100.
        assert g.mean() == pytest.approx(100.0)
        snap = g.snapshot()
        assert snap["elapsed"] == pytest.approx(10.0)
        assert snap["area"] == pytest.approx(1000.0)

    def test_merge_combines_windows(self):
        clock, tick = self.fake_clock()
        g = TimeWeightedGauge(clock=tick)
        g.set(4)
        clock["now"] = 10.0  # local: area 40 over 10
        g.merge({"kind": "gauge", "area": 60.0, "elapsed": 10.0, "max": 6})
        assert g.mean() == pytest.approx(5.0)  # (40 + 60) / (10 + 10)
        assert g.snapshot()["max"] == 6


class TestRateStat:
    def test_rate_math(self):
        r = RateStat()
        r.merge({"kind": "rate", "count": 50, "elapsed": 100.0})
        assert r.per_us() == pytest.approx(0.5)
        assert r.per_sec() == pytest.approx(0.5e6)

    def test_zero_window_is_nan(self):
        assert math.isnan(RateStat().per_us())

    def test_merge_pools_windows(self):
        r = RateStat()
        r.merge({"kind": "rate", "count": 10, "elapsed": 10.0})
        r.merge({"kind": "rate", "count": 30, "elapsed": 10.0})
        assert r.per_us() == pytest.approx(2.0)


class TestMaterialize:
    def test_round_trips_every_kind(self):
        hist = LogHistogram()
        hist.record(3.0)
        gauge = TimeWeightedGauge()
        gauge.merge({"kind": "gauge", "area": 5.0, "elapsed": 2.0, "max": 4})
        for inst in (Counter(7), PeakGauge(3), hist, gauge, RateStat(4, 2.0)):
            snap = inst.snapshot()
            clone = materialize(snap)
            assert clone.snapshot() == snap

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            materialize({"kind": "sparkline"})


class TestDerivedRatio:
    def test_recomputes_from_live_operands(self):
        num, den = Counter(), Counter()
        r = DerivedRatio(lambda: num.value, lambda: den.value,
                         operands=("a.events", "a.requests"))
        num.inc(12)
        den.inc(4)
        assert r.value == 3.0
        num.inc(6)
        assert r.value == 4.5

    def test_zero_denominator_reports_zero(self):
        r = DerivedRatio(lambda: 7, lambda: 0)
        assert r.value == 0.0

    def test_snapshot_carries_operand_names(self):
        r = DerivedRatio(lambda: 6, lambda: 2,
                         operands=("a.events", "a.requests"))
        assert r.snapshot() == {"kind": "ratio", "value": 3.0,
                                "num": "a.events", "den": "a.requests"}

    def test_merge_is_a_noop(self):
        # Merged ratios are not sums of ratios; the registry re-derives
        # from the merged operand counters instead.
        num = Counter()
        num.inc(6)
        r = DerivedRatio(lambda: num.value, lambda: 2)
        r.merge({"kind": "ratio", "value": 99.0})
        assert r.value == 3.0


class TestRatioHolder:
    def test_latest_reading_wins(self):
        h = RatioHolder(3.0)
        h.merge({"kind": "ratio", "value": 5.5})
        assert h.value == 5.5

    def test_materialized_from_snapshot_without_operands(self):
        h = materialize({"kind": "ratio", "value": 2.5})
        assert isinstance(h, RatioHolder)
        assert h.value == 2.5

    def test_reset(self):
        h = RatioHolder(9.0)
        h.reset()
        assert h.value == 0.0
