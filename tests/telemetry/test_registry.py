"""Registry semantics: naming, snapshot/merge, scopes."""

import pytest

from repro import telemetry
from repro.telemetry import Counter, MetricsRegistry
from repro.telemetry.registry import _stack


class TestRegistration:
    def test_get_or_create_factories(self):
        reg = MetricsRegistry()
        c = reg.counter("sim.kernel.events")
        assert reg.counter("sim.kernel.events") is c  # idempotent
        assert reg.get("sim.kernel.events") is c
        assert "sim.kernel.events" in reg
        assert len(reg) == 1

    def test_register_replaces_latest_wins(self):
        reg = MetricsRegistry()
        old = reg.counter("x")
        new = Counter()
        reg.register("x", new)
        assert reg.get("x") is new and reg.get("x") is not old

    def test_names_filter_by_dotted_prefix(self):
        reg = MetricsRegistry()
        reg.counter("lynx.server.a.rx.drops")
        reg.counter("lynx.server.a.tx.sent")
        reg.counter("lynx.rmq.q.sweeps")
        assert reg.names("lynx.server.a") == ["lynx.server.a.rx.drops",
                                              "lynx.server.a.tx.sent"]
        # "lynx.serv" is not a dotted-path ancestor of lynx.server.*
        assert reg.names("lynx.serv") == []


class TestSnapshotMergeReset:
    def test_snapshot_preserves_registration_order(self):
        reg = MetricsRegistry()
        reg.counter("b").inc(1)
        reg.counter("a").inc(2)
        assert list(reg.snapshot()) == ["b", "a"]

    def test_merge_into_live_instrument(self):
        src, dst = MetricsRegistry(), MetricsRegistry()
        src.counter("n").inc(5)
        dst.counter("n").inc(2)
        dst.merge(src.snapshot())
        assert dst.get("n").value == 7

    def test_merge_materializes_unknown_names(self):
        src, dst = MetricsRegistry(), MetricsRegistry()
        src.histogram("lat").record(3.0)
        dst.merge(src.snapshot())
        assert dst.get("lat").count == 1

    def test_merge_kind_clash_replaces(self):
        src, dst = MetricsRegistry(), MetricsRegistry()
        src.peak("m").record(9)
        dst.counter("m").inc(1)
        dst.merge(src.snapshot())
        assert dst.get("m").snapshot() == {"kind": "peak", "value": 9}

    def test_merge_is_associative_across_registries(self):
        snaps = []
        for n in (3, 5, 7):
            reg = MetricsRegistry()
            reg.counter("c").inc(n)
            reg.peak("p").record(n)
            snaps.append(reg.snapshot())
        one = MetricsRegistry()
        for snap in snaps:
            one.merge(snap)
        other = MetricsRegistry()
        for snap in reversed(snaps):
            other.merge(snap)
        assert one.snapshot() == other.snapshot()

    def test_reset_in_place_keeps_cached_refs(self):
        reg = MetricsRegistry()
        ref = reg.counter("sim.kernel.events")
        ref.inc(10)
        reg.reset(prefix="sim.kernel")
        assert ref.value == 0
        ref.inc(1)  # the cached reference still feeds the registry
        assert reg.get("sim.kernel.events").value == 1

    def test_reset_respects_prefix(self):
        reg = MetricsRegistry()
        reg.counter("sim.kernel.events").inc(3)
        reg.counter("net.client.sent").inc(4)
        reg.reset(prefix="sim.kernel")
        assert reg.get("sim.kernel.events").value == 0
        assert reg.get("net.client.sent").value == 4


class TestScopes:
    def test_scope_isolates_and_merges(self):
        root = telemetry.registry()
        before = root.get("scoped.n").value if "scoped.n" in root else 0
        with telemetry.scope() as reg:
            assert telemetry.registry() is reg
            reg.counter("scoped.n").inc(5)
            snap = reg.snapshot()
        assert telemetry.registry() is root
        root.merge(snap)
        try:
            assert root.get("scoped.n").value == before + 5
        finally:
            root.unregister("scoped.n")

    def test_scope_exit_removes_leaked_pushes(self):
        depth = len(_stack)
        with telemetry.scope():
            telemetry.push_scope()  # a callee forgot to pop
            telemetry.push_scope()
        assert len(_stack) == depth

    def test_root_scope_cannot_be_popped(self):
        depth = len(_stack)
        with pytest.raises(RuntimeError):
            for _ in range(depth + 1):
                telemetry.pop_scope()

    def test_reset_scopes_clears_everything(self):
        telemetry.push_scope()
        telemetry.registry().counter("junk").inc()
        telemetry.reset_scopes()
        assert len(_stack) == 1
        assert "junk" not in telemetry.registry()

    def test_module_snapshot_helper_reads_current_scope(self):
        with telemetry.scope() as reg:
            reg.counter("helper.n").inc(2)
            snap = telemetry.snapshot("helper")
        assert snap == {"helper.n": {"kind": "counter", "value": 2}}


class TestRatioMerge:
    def test_worker_ratio_rederives_from_merged_operands(self):
        # A worker ships counters + a derived ratio; the parent merges
        # the counters additively and must recompute the ratio from its
        # own (merged) operands, not hold the worker's stale quotient.
        worker = MetricsRegistry()
        worker.counter("k.events").inc(60)
        worker.counter("k.requests").inc(10)
        worker.ratio("k.events_per_request", "k.events", "k.requests")

        parent = MetricsRegistry()
        parent.counter("k.events").inc(40)
        parent.counter("k.requests").inc(10)
        parent.merge(worker.snapshot())
        assert parent.get("k.events").value == 100
        assert parent.get("k.events_per_request").value == 5.0

    def test_ratio_without_operands_materializes_holder(self):
        parent = MetricsRegistry()
        parent.merge({"lone.ratio": {"kind": "ratio", "value": 4.2}})
        assert parent.get("lone.ratio").value == 4.2

    def test_ratio_is_get_or_create(self):
        reg = MetricsRegistry()
        first = reg.ratio("r", "n", "d")
        reg.counter("n").inc(8)
        reg.counter("d").inc(2)
        second = reg.ratio("r", "n", "d")
        assert first is second
        assert second.value == 4.0
