"""Sanity of the calibrated profiles (config.py is the model's anchor)."""

import dataclasses

import pytest

from repro import config


ALL_STACKS = (config.XEON_VMA, config.XEON_KERNEL, config.ARM_VMA,
              config.ARM_KERNEL, config.VCA_KERNEL)


class TestStackProfiles:
    def test_all_costs_positive(self):
        for profile in ALL_STACKS:
            for field in dataclasses.fields(profile):
                value = getattr(profile, field.name)
                if isinstance(value, float):
                    assert value > 0, (profile.name, field.name)

    def test_tcp_always_costs_more_than_udp(self):
        for profile in ALL_STACKS:
            assert profile.tcp_rx_fixed > profile.udp_rx_fixed
            assert profile.tcp_tx_fixed > profile.udp_tx_fixed

    def test_arm_slower_than_xeon(self):
        assert config.ARM_VMA.udp_rx_fixed > config.XEON_VMA.udp_rx_fixed
        assert config.ARM_VMA.tcp_rx_fixed > config.XEON_VMA.tcp_rx_fixed

    def test_kernel_slower_than_vma(self):
        assert config.XEON_KERNEL.udp_rx_fixed > config.XEON_VMA.udp_rx_fixed
        assert config.ARM_KERNEL.udp_rx_fixed > config.ARM_VMA.udp_rx_fixed


class TestFig8cCalibration:
    """The knees the stack profiles were calibrated against (DESIGN §4.3)."""

    LENET_REQ = 784
    LYNX_OVERHEAD = 2.0  # dispatch + post + forward + sweep share

    def _per_request(self, profile, proto):
        if proto == "udp":
            return (profile.udp_rx_fixed + profile.udp_tx_fixed
                    + profile.udp_per_byte * self.LENET_REQ
                    + self.LYNX_OVERHEAD)
        return (profile.tcp_rx_fixed + profile.tcp_tx_fixed
                + profile.tcp_per_byte * self.LENET_REQ
                + self.LYNX_OVERHEAD)

    def test_xeon_udp_knee_near_74_gpus(self):
        capacity = 1e6 / self._per_request(config.XEON_VMA, "udp")
        assert capacity / 3500 == pytest.approx(74, rel=0.25)

    def test_bluefield_udp_knee_near_102_gpus(self):
        capacity = 7e6 / self._per_request(config.ARM_VMA, "udp") / 3.0
        # ARM Lynx-software overheads are 1/speed_factor slower; the
        # analytic check is loose — the measured knee (E11) is the truth
        assert 60 <= capacity / 3500 * 3.0 <= 130

    def test_tcp_knees_order(self):
        xeon = 1e6 / self._per_request(config.XEON_VMA, "tcp") / 3500
        arm = 7e6 / self._per_request(config.ARM_VMA, "tcp") / 3500
        assert 5 <= xeon <= 9      # paper: 7
        assert 12 <= arm <= 19     # paper: 15


class TestGpuProfiles:
    def test_k80_slower_than_k40m(self):
        assert config.K80.speed_factor < config.K40M.speed_factor
        # Fig 8b: K80 peaks at 3300 req/s where K40m does ~3500
        k80_rate = config.K40M.speed_factor / 278.0
        assert 1e6 * config.K80.speed_factor / 278.0 == pytest.approx(
            3300, rel=0.03)

    def test_memcpy_fixed_in_paper_band(self):
        # §5.1: "cudaMemcpyAsync incurs a constant overhead of 7-8us"
        assert 7.0 <= config.K40M.memcpy_fixed <= 8.0

    def test_max_threadblocks_k40m(self):
        assert config.K40M.max_threadblocks == 240


class TestSimConfig:
    def test_with_replaces_fields(self):
        cfg = config.DEFAULT_CONFIG.with_(seed=7)
        assert cfg.seed == 7
        assert config.DEFAULT_CONFIG.seed == 42  # frozen original

    def test_profiles_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            config.K40M.memcpy_fixed = 1.0

    def test_rdma_barrier_matches_paper(self):
        # §5.1: the write barrier costs ~5us per message
        assert config.DEFAULT_RDMA.barrier_latency == pytest.approx(5.0)

    def test_bluefield_uses_seven_workers(self):
        assert config.BluefieldProfile().worker_cores == 7
