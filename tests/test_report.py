"""ASCII chart rendering."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.report import ALL_FIGURES, bar_chart, cdf_chart, line_chart


class TestBarChart:
    def test_longest_bar_is_the_peak(self):
        chart = bar_chart([("a", 10.0), ("b", 5.0)], width=20)
        lines = chart.splitlines()
        assert lines[0].count("█") == 20
        assert lines[1].count("█") == 10

    def test_labels_and_values_present(self):
        chart = bar_chart([("lynx", 3.5), ("host", 2.8)], unit="K")
        assert "lynx" in chart and "3.50K" in chart
        assert "host" in chart and "2.80K" in chart

    def test_title(self):
        assert bar_chart([("a", 1)], title="T").splitlines()[0] == "T"

    def test_none_value_rendered_as_dash(self):
        chart = bar_chart([("a", 1.0), ("b", None)])
        assert chart.splitlines()[1].endswith("-")

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            bar_chart([])


class TestLineChart:
    def test_markers_and_legend(self):
        chart = line_chart({"up": [(0, 0), (10, 10)],
                            "flat": [(0, 5), (10, 5)]})
        assert "o up" in chart
        assert "x flat" in chart
        assert "o" in chart and "x" in chart

    def test_axis_bounds_labelled(self):
        chart = line_chart({"s": [(2, 1), (8, 3)]}, x_label="gpus")
        assert "2.00" in chart and "8.00" in chart
        assert "gpus" in chart

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            line_chart({})
        with pytest.raises(ConfigError):
            line_chart({"s": []})


class TestCdfChart:
    def test_monotone_marker_columns(self):
        rng = np.random.default_rng(0)
        chart = cdf_chart({"lat": rng.exponential(100, 500)})
        assert "fraction of requests" in chart

    def test_two_series(self):
        chart = cdf_chart({"fast": [1, 2, 3] * 20, "slow": [5, 6, 9] * 20})
        assert "fast" in chart and "slow" in chart

    def test_empty_samples_rejected(self):
        with pytest.raises(ConfigError):
            cdf_chart({"empty": []})


class TestFigureRegistry:
    def test_every_paper_figure_present(self):
        assert set(ALL_FIGURES) == {"fig5", "fig6", "fig7", "fig8a",
                                    "fig8b", "fig8c", "fig9"}


class TestScorecard:
    def test_grade_bands(self):
        from repro.report import grade

        assert grade(100, 100) == "MATCH"
        assert grade(120, 100) == "MATCH"
        assert grade(150, 100) == "NEAR"
        assert grade(300, 100) == "DEVIATES"
        assert grade(1, None) is None
        assert grade(None, 5) is None

    def test_score_rows_pairs_columns(self):
        from repro.report import score_rows

        rows = [{"krps": 3.5, "paper_krps": 3.5, "other": 1},
                {"krps": 9.0, "paper_krps": 3.0}]
        findings = score_rows(rows)
        assert [f["verdict"] for f in findings] == ["MATCH", "DEVIATES"]

    def test_results_dir_scoring(self, tmp_path):
        import json

        from repro.report import render_scorecard, score_results_dir

        blob = {"exp_id": "E42", "rows": [{"krps": 2.9, "paper_krps": 2.8}]}
        (tmp_path / "E42.json").write_text(json.dumps(blob))
        scores = score_results_dir(str(tmp_path))
        assert "E42" in scores
        card = render_scorecard(scores)
        assert "MATCH 1" in card

    def test_missing_dir_rejected(self):
        from repro.errors import ConfigError
        from repro.report import score_results_dir

        with pytest.raises(ConfigError):
            score_results_dir("/nonexistent/dir")


class TestChartProperties:
    """Charts must render for arbitrary well-formed data."""

    def test_bar_chart_random_values(self):
        from hypothesis import given, settings, strategies as st

        @given(values=st.lists(st.floats(min_value=0.001, max_value=1e9,
                                         allow_nan=False),
                               min_size=1, max_size=12))
        @settings(max_examples=30, deadline=None)
        def check(values):
            rows = [("row-%d" % i, v) for i, v in enumerate(values)]
            out = bar_chart(rows)
            assert len(out.splitlines()) == len(values)

        check()

    def test_line_chart_random_points(self):
        from hypothesis import given, settings, strategies as st

        point = st.tuples(st.floats(min_value=-1e6, max_value=1e6,
                                    allow_nan=False),
                          st.floats(min_value=0, max_value=1e6,
                                    allow_nan=False))

        @given(pts=st.lists(point, min_size=1, max_size=40))
        @settings(max_examples=30, deadline=None)
        def check(pts):
            out = line_chart({"s": pts})
            assert "s" in out

        check()


class TestFigureSmoke:
    def test_figure5_renders(self):
        from repro.report.figures import figure5

        out = figure5(fast=True)
        assert "Figure 5" in out
        assert "rdma+rdma" in out
