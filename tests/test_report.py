"""ASCII chart rendering."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.report import ALL_FIGURES, bar_chart, cdf_chart, line_chart


class TestBarChart:
    def test_longest_bar_is_the_peak(self):
        chart = bar_chart([("a", 10.0), ("b", 5.0)], width=20)
        lines = chart.splitlines()
        assert lines[0].count("█") == 20
        assert lines[1].count("█") == 10

    def test_labels_and_values_present(self):
        chart = bar_chart([("lynx", 3.5), ("host", 2.8)], unit="K")
        assert "lynx" in chart and "3.50K" in chart
        assert "host" in chart and "2.80K" in chart

    def test_title(self):
        assert bar_chart([("a", 1)], title="T").splitlines()[0] == "T"

    def test_none_value_rendered_as_dash(self):
        chart = bar_chart([("a", 1.0), ("b", None)])
        assert chart.splitlines()[1].endswith("-")

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            bar_chart([])


class TestLineChart:
    def test_markers_and_legend(self):
        chart = line_chart({"up": [(0, 0), (10, 10)],
                            "flat": [(0, 5), (10, 5)]})
        assert "o up" in chart
        assert "x flat" in chart
        assert "o" in chart and "x" in chart

    def test_axis_bounds_labelled(self):
        chart = line_chart({"s": [(2, 1), (8, 3)]}, x_label="gpus")
        assert "2.00" in chart and "8.00" in chart
        assert "gpus" in chart

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            line_chart({})
        with pytest.raises(ConfigError):
            line_chart({"s": []})


class TestCdfChart:
    def test_monotone_marker_columns(self):
        rng = np.random.default_rng(0)
        chart = cdf_chart({"lat": rng.exponential(100, 500)})
        assert "fraction of requests" in chart

    def test_two_series(self):
        chart = cdf_chart({"fast": [1, 2, 3] * 20, "slow": [5, 6, 9] * 20})
        assert "fast" in chart and "slow" in chart

    def test_empty_samples_rejected(self):
        with pytest.raises(ConfigError):
            cdf_chart({"empty": []})


class TestFigureRegistry:
    def test_every_paper_figure_present(self):
        assert set(ALL_FIGURES) == {"fig5", "fig6", "fig7", "fig8a",
                                    "fig8b", "fig8c", "fig9"}


class TestScorecard:
    def test_grade_bands(self):
        from repro.report import grade

        assert grade(100, 100) == "MATCH"
        assert grade(120, 100) == "MATCH"
        assert grade(150, 100) == "NEAR"
        assert grade(300, 100) == "DEVIATES"
        assert grade(1, None) is None
        assert grade(None, 5) is None

    def test_score_rows_pairs_columns(self):
        from repro.report import score_rows

        rows = [{"krps": 3.5, "paper_krps": 3.5, "other": 1},
                {"krps": 9.0, "paper_krps": 3.0}]
        findings = score_rows(rows)
        assert [f["verdict"] for f in findings] == ["MATCH", "DEVIATES"]

    def test_results_dir_scoring(self, tmp_path):
        import json

        from repro.report import render_scorecard, score_results_dir

        blob = {"exp_id": "E42", "rows": [{"krps": 2.9, "paper_krps": 2.8}]}
        (tmp_path / "E42.json").write_text(json.dumps(blob))
        scores = score_results_dir(str(tmp_path))
        assert "E42" in scores
        card = render_scorecard(scores)
        assert "MATCH 1" in card

    def test_missing_dir_rejected(self):
        from repro.errors import ConfigError
        from repro.report import score_results_dir

        with pytest.raises(ConfigError):
            score_results_dir("/nonexistent/dir")


class TestChartProperties:
    """Charts must render for arbitrary well-formed data."""

    def test_bar_chart_random_values(self):
        from hypothesis import given, settings, strategies as st

        @given(values=st.lists(st.floats(min_value=0.001, max_value=1e9,
                                         allow_nan=False),
                               min_size=1, max_size=12))
        @settings(max_examples=30, deadline=None)
        def check(values):
            rows = [("row-%d" % i, v) for i, v in enumerate(values)]
            out = bar_chart(rows)
            assert len(out.splitlines()) == len(values)

        check()

    def test_line_chart_random_points(self):
        from hypothesis import given, settings, strategies as st

        point = st.tuples(st.floats(min_value=-1e6, max_value=1e6,
                                    allow_nan=False),
                          st.floats(min_value=0, max_value=1e6,
                                    allow_nan=False))

        @given(pts=st.lists(point, min_size=1, max_size=40))
        @settings(max_examples=30, deadline=None)
        def check(pts):
            out = line_chart({"s": pts})
            assert "s" in out

        check()


class TestFigureSmoke:
    def test_figure5_renders(self):
        from repro.report.figures import figure5

        out = figure5(fast=True)
        assert "Figure 5" in out
        assert "rdma+rdma" in out


class TestImportanceTable:
    def _doc(self):
        return {
            "schema": "repro.campaign/1",
            "campaigns": [
                {"exp_id": "ABL-A", "metric": "krps",
                 "variants": [],
                 "importance": [
                     {"component": "small", "knob": "k1",
                      "importance": 0.05, "harmful": False,
                      "signals": {"goodput": -0.05, "p99_us": None,
                                  "kernel_events": 0.01,
                                  "core_burn": None}}]},
                {"exp_id": "ABL-B", "metric": "p99_us",
                 "variants": [],
                 "importance": [
                     {"component": "bad", "knob": "k2",
                      "importance": -0.4, "harmful": True,
                      "signals": {"goodput": 0.4, "p99_us": -0.2,
                                  "kernel_events": None,
                                  "core_burn": 0.1}}]},
            ],
        }

    def test_ranked_by_abs_importance_with_harmful_flag(self):
        from repro.report.scorecard import render_importance

        table = render_importance(self._doc())
        lines = table.splitlines()
        bad_line = next(line for line in lines if "bad" in line)
        small_line = next(line for line in lines if "small" in line)
        # |−0.4| outranks |0.05|
        assert lines.index(bad_line) < lines.index(small_line)
        assert "HARMFUL" in bad_line
        assert "HARMFUL" not in small_line
        assert "+40.0%" in bad_line and "n/a" in small_line

    def test_accepts_bare_campaign_list_and_empty(self):
        from repro.report.scorecard import render_importance

        assert "ABL-A" in render_importance(self._doc()["campaigns"])
        assert "(no campaigns)" in render_importance([])

    def test_load_results_campaign(self, tmp_path):
        import json

        from repro.report.scorecard import load_results_campaign

        assert load_results_campaign(str(tmp_path)) is None
        (tmp_path / "campaign.json").write_text(json.dumps(self._doc()))
        doc = load_results_campaign(str(tmp_path))
        assert [c["exp_id"] for c in doc["campaigns"]] == ["ABL-A", "ABL-B"]

    def test_scorecard_appends_importance_section(self):
        from repro.report.scorecard import render_scorecard

        card = render_scorecard({}, campaign=self._doc())
        assert "component importance" in card
        assert "HARMFUL" in card
