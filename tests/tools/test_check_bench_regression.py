"""The benchmark regression checker (tools/check_bench_regression.py)."""

import importlib.util
import json
import os

_TOOL = os.path.join(os.path.dirname(__file__), os.pardir, os.pardir,
                     "tools", "check_bench_regression.py")
_spec = importlib.util.spec_from_file_location("check_bench_regression",
                                               _TOOL)
checker = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(checker)


def _timed(seconds, factor=1.0):
    return {"measured_seconds": seconds, "machine_speed_factor": factor}


def _rate(events_per_second, factor=1.0):
    return {"events_per_second": events_per_second,
            "machine_speed_factor": factor}


class TestTimedSections:
    def test_within_threshold_passes(self):
        base = {"e09": _timed(1.0)}
        cur = {"e09": _timed(1.1)}
        assert checker.compare(base, cur, threshold=0.15) == []

    def test_slowdown_beyond_threshold_fails(self):
        base = {"e09": _timed(1.0)}
        cur = {"e09": _timed(1.3)}
        failures = checker.compare(base, cur, threshold=0.15)
        assert [f[0] for f in failures] == ["e09"]

    def test_machine_factor_normalizes_times(self):
        # 2x slower wall-clock on a 2x slower machine: no regression.
        base = {"e09": _timed(1.0, factor=1.0)}
        cur = {"e09": _timed(2.0, factor=2.0)}
        assert checker.compare(base, cur, threshold=0.15) == []


class TestRateSections:
    def test_rate_drop_beyond_threshold_fails(self):
        base = {"kernel_churn": _rate(1_000_000)}
        cur = {"kernel_churn": _rate(700_000)}
        failures = checker.compare(base, cur, threshold=0.15)
        assert [f[0] for f in failures] == ["kernel_churn"]

    def test_rate_gain_passes(self):
        base = {"kernel_churn": _rate(1_000_000)}
        cur = {"kernel_churn": _rate(1_400_000)}
        assert checker.compare(base, cur, threshold=0.15) == []

    def test_machine_factor_normalizes_rates(self):
        # Half the raw rate on a 2x slower machine: same normalized rate.
        base = {"kernel_churn": _rate(1_000_000, factor=1.0)}
        cur = {"kernel_churn": _rate(500_000, factor=2.0)}
        assert checker.compare(base, cur, threshold=0.15) == []

    def test_best_ratio_sections_gated_unscaled(self):
        base = {"landing": {"best_ratio": 3.5}}
        ok = {"landing": {"best_ratio": 3.2, "machine_speed_factor": 9.0}}
        bad = {"landing": {"best_ratio": 2.0}}
        assert checker.compare(base, ok, threshold=0.15) == []
        failures = checker.compare(base, bad, threshold=0.15)
        assert [f[0] for f in failures] == ["landing"]

    def test_unknown_sections_skipped(self):
        base = {"meta": {"points": 14}, "gone": _rate(1_000_000)}
        cur = {"meta": {"points": 14}}
        assert checker.compare(base, cur, threshold=0.15) == []


class TestMain:
    def test_exit_codes(self, tmp_path):
        base_path = tmp_path / "base.json"
        cur_path = tmp_path / "cur.json"
        base_path.write_text(json.dumps({"e09": _timed(1.0),
                                         "churn": _rate(1_000_000)}))
        cur_path.write_text(json.dumps({"e09": _timed(1.0),
                                        "churn": _rate(1_000_000)}))
        assert checker.main([str(base_path), str(cur_path)]) == 0
        cur_path.write_text(json.dumps({"e09": _timed(1.0),
                                        "churn": _rate(100_000)}))
        assert checker.main([str(base_path), str(cur_path)]) == 1
