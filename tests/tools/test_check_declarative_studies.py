"""The declarative-study lint (tools/check_declarative_studies.py)."""

import importlib.util
import os
import textwrap

_TOOL = os.path.join(os.path.dirname(__file__), os.pardir, os.pardir,
                     "tools", "check_declarative_studies.py")
_spec = importlib.util.spec_from_file_location("check_declarative_studies",
                                               _TOOL)
lint = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(lint)


def write(tmp_path, relpath, body):
    path = tmp_path / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(body))
    return str(path)


class TestCheckModule:
    def test_experiment_result_call_flagged(self, tmp_path):
        path = write(tmp_path, "new_study.py", """\
            from .base import ExperimentResult

            def run(fast=True, seed=42):
                result = ExperimentResult("X", "t", "ref")
                return result
            """)
        findings = lint.check_module(path)
        assert len(findings) == 1
        assert "ExperimentResult" in findings[0][1]

    def test_run_points_call_flagged(self, tmp_path):
        path = write(tmp_path, "new_study.py", """\
            from . import sweep

            def run(points):
                return sweep.run_points(points, jobs=2)
            """)
        findings = lint.check_module(path)
        assert findings and "run_points" in findings[0][1]

    def test_campaign_declarations_clean(self, tmp_path):
        path = write(tmp_path, "new_study.py", """\
            from .campaign import Campaign, Component, Knob

            my_study = Campaign(
                "X", "t", "ref", scenario=lambda seed=42: 1.0,
                components=[Component("c", [Knob("k", values=(1, 2),
                                                 kwarg="k")])])
            """)
        assert lint.check_module(path) == []

    def test_allow_marker_suppresses(self, tmp_path):
        path = write(tmp_path, "new_study.py", """\
            from .base import ExperimentResult

            def run():
                return ExperimentResult("X", "t", "r")  # lint: allow-handwritten-study
            """)
        assert lint.check_module(path) == []


class TestTreeWalk:
    def test_grandfathered_modules_skipped(self, tmp_path):
        for name in ("e01_invocation_overhead.py", "base.py", "sweep.py",
                     "campaign.py", "common.py", "breakdown.py",
                     "__main__.py", "__init__.py", "testbed.py"):
            write(tmp_path, name, "x = 1\n")
        write(tmp_path, "fresh_study.py", "y = 2\n")
        found = [os.path.basename(p)
                 for p in lint.iter_sources(str(tmp_path))]
        assert found == ["fresh_study.py"]

    def test_main_exit_codes(self, tmp_path, capsys):
        write(tmp_path, "clean_study.py", "NAME = 'ok'\n")
        assert lint.main([str(tmp_path)]) == 0
        write(tmp_path, "dirty_study.py", """\
            def run(points):
                return run_points(points)
            """)
        assert lint.main([str(tmp_path)]) == 1
        assert "dirty_study.py" in capsys.readouterr().out
        assert lint.main([str(tmp_path / "nonexistent")]) == 2

    def test_ablations_module_passes(self):
        # the refactored ablations.py is deliberately NOT grandfathered:
        # it is the proof the declarative path carries a real workload
        experiments = os.path.join(os.path.dirname(_TOOL), os.pardir,
                                   "src", "repro", "experiments")
        paths = [os.path.basename(p)
                 for p in lint.iter_sources(experiments)]
        assert "ablations.py" in paths
        findings = []
        for path in lint.iter_sources(experiments):
            findings.extend(lint.check_module(path))
        assert findings == []
