"""The module-global-counter lint (tools/check_no_global_counters.py)."""

import importlib.util
import os
import textwrap

import pytest

_TOOL = os.path.join(os.path.dirname(__file__), os.pardir, os.pardir,
                     "tools", "check_no_global_counters.py")
_spec = importlib.util.spec_from_file_location("check_no_global_counters",
                                               _TOOL)
lint = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(lint)


def write(tmp_path, relpath, body):
    path = tmp_path / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(body))
    return str(path)


class TestCheckModule:
    def test_global_reassigned_numeric_flagged(self, tmp_path):
        path = write(tmp_path, "mod.py", """\
            events = 0

            def bump():
                global events
                events += 1
            """)
        findings = lint.check_module(path)
        assert len(findings) == 1
        assert "events" in findings[0][1]

    def test_plain_constant_not_flagged(self, tmp_path):
        path = write(tmp_path, "mod.py", """\
            THRESHOLD = 0.25

            def grade(x):
                return x < THRESHOLD
            """)
        assert lint.check_module(path) == []

    def test_itertools_count_flagged(self, tmp_path):
        path = write(tmp_path, "mod.py", """\
            from itertools import count
            _ids = count(1)
            """)
        findings = lint.check_module(path)
        assert findings and "count" in findings[0][1]

    def test_collections_counter_and_defaultdict_flagged(self, tmp_path):
        path = write(tmp_path, "mod.py", """\
            import collections
            stats = collections.Counter()
            hits = collections.defaultdict(int)
            """)
        assert len(lint.check_module(path)) == 2

    def test_accumulator_dict_flagged(self, tmp_path):
        path = write(tmp_path, "mod.py", """\
            _totals = {"events": 0, "spawns": 0}
            """)
        findings = lint.check_module(path)
        assert findings and "accumulator dict" in findings[0][1]

    def test_allow_marker_suppresses(self, tmp_path):
        path = write(tmp_path, "mod.py", """\
            from itertools import count
            _ids = count(1)  # lint: allow-global-counter
            """)
        assert lint.check_module(path) == []

    def test_non_numeric_global_not_flagged(self, tmp_path):
        # sweep._active_jobs-style: a None-valued module setting that is
        # reassigned via `global` is configuration, not a counter.
        path = write(tmp_path, "mod.py", """\
            _active = None

            def configure(v):
                global _active
                _active = v
            """)
        assert lint.check_module(path) == []


class TestTreeWalk:
    def test_telemetry_dir_exempt(self, tmp_path):
        write(tmp_path, "repro/telemetry/instruments.py", """\
            total = 0

            def bump():
                global total
                total += 1
            """)
        write(tmp_path, "repro/net/mod.py", "x = 'fine'\n")
        found = [os.path.relpath(p, str(tmp_path))
                 for p in lint.iter_sources(str(tmp_path))]
        assert found == [os.path.join("repro", "net", "mod.py")]

    def test_main_exit_codes(self, tmp_path, capsys):
        write(tmp_path, "clean.py", "NAME = 'ok'\n")
        assert lint.main([str(tmp_path)]) == 0
        write(tmp_path, "dirty.py", """\
            n = 0

            def f():
                global n
                n = n + 1
            """)
        assert lint.main([str(tmp_path)]) == 1
        assert "dirty.py" in capsys.readouterr().out

    def test_repo_source_tree_is_clean(self):
        src = os.path.join(os.path.dirname(_TOOL), os.pardir, "src", "repro")
        findings = []
        for path in lint.iter_sources(src):
            findings.extend(lint.check_module(path))
        assert findings == []


class TestRepoPolicy:
    def test_sim_environment_has_no_totals_dict(self):
        # The tentpole removed the module-global kernel-totals dict; the
        # shims must stay registry-backed.
        import inspect

        from repro.sim import environment

        source = inspect.getsource(environment)
        assert "_TOTALS = {" not in source
        assert "telemetry" in source
