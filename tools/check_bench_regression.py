#!/usr/bin/env python
"""Fail if the timed benchmarks regressed vs their committed baselines.

Usage::

    python tools/check_bench_regression.py BASELINE.json CURRENT.json \
        [--pair BASELINE2.json CURRENT2.json ...] [--threshold 0.15]

Each pair is a (committed baseline, freshly measured) copy of one
benchmark results file — ``benchmarks/results/kernel_throughput.json``,
``benchmarks/results/parallel_sweep.json``, and friends share the same
shape.  Raw wall-clock is machine-dependent, so each experiment
section's ``measured_seconds`` is first divided by that file's own
``machine_speed_factor`` (the calibration-loop ratio the benchmark
records); the check fails when any normalized time grew more than
``--threshold`` (default 15%) over the baseline, across any pair.

Sections present on only one side are skipped with a note — a freshly
added benchmark has no baseline to regress against.
"""

import argparse
import json
import sys


def _normalized_seconds(section):
    measured = section.get("measured_seconds")
    factor = section.get("machine_speed_factor")
    if measured is None or not factor:
        return None
    return measured / factor


def compare(baseline, current, threshold):
    """Return a list of (section, base_norm, cur_norm, ratio) failures."""
    failures = []
    for name, base_section in baseline.items():
        base_norm = _normalized_seconds(base_section)
        if base_norm is None:
            continue  # e.g. the kernel_churn section: rate-based, not timed
        cur_section = current.get(name)
        if cur_section is None:
            print("note: section %r missing from current results" % name)
            continue
        cur_norm = _normalized_seconds(cur_section)
        if cur_norm is None:
            print("note: section %r has no timing in current results" % name)
            continue
        ratio = cur_norm / base_norm
        status = "FAIL" if ratio > 1.0 + threshold else "ok"
        print("%-32s baseline %8.3fs  current %8.3fs  ratio %.3f  %s"
              % (name, base_norm, cur_norm, ratio, status))
        if ratio > 1.0 + threshold:
            failures.append((name, base_norm, cur_norm, ratio))
    return failures


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="committed benchmark results json")
    parser.add_argument("current", help="freshly measured results json")
    parser.add_argument("--pair", nargs=2, action="append", default=[],
                        metavar=("BASELINE", "CURRENT"),
                        help="additional baseline/current file pair "
                             "(repeatable)")
    parser.add_argument("--threshold", type=float, default=0.15,
                        help="allowed fractional slowdown (default 0.15)")
    args = parser.parse_args(argv)

    failures = []
    for base_path, cur_path in [(args.baseline, args.current)] + args.pair:
        with open(base_path) as fh:
            baseline = json.load(fh)
        with open(cur_path) as fh:
            current = json.load(fh)
        print("-- %s vs %s" % (base_path, cur_path))
        failures.extend(compare(baseline, current, args.threshold))

    if failures:
        for name, base_norm, cur_norm, ratio in failures:
            print("regression: %s is %.1f%% slower than baseline "
                  "(%.3fs -> %.3fs, machine-normalized)"
                  % (name, (ratio - 1.0) * 100.0, base_norm, cur_norm),
                  file=sys.stderr)
        return 1
    print("no benchmark regressions beyond %.0f%%" % (args.threshold * 100.0))
    return 0


if __name__ == "__main__":
    sys.exit(main())
