#!/usr/bin/env python
"""Fail if the timed benchmarks regressed vs their committed baselines.

Usage::

    python tools/check_bench_regression.py BASELINE.json CURRENT.json \
        [--pair BASELINE2.json CURRENT2.json ...] [--threshold 0.15]

Each pair is a (committed baseline, freshly measured) copy of one
benchmark results file — ``benchmarks/results/kernel_throughput.json``,
``benchmarks/results/parallel_sweep.json``, and friends share the same
shape.  Raw wall-clock is machine-dependent, so each experiment
section's ``measured_seconds`` is first divided by that file's own
``machine_speed_factor`` (the calibration-loop ratio the benchmark
records); the check fails when any normalized time grew more than
``--threshold`` (default 15%) over the baseline, across any pair.

Rate sections — the kernel-churn family, which record
``events_per_second`` instead of ``measured_seconds`` — are gated the
same way in the other direction: the rate is *multiplied* by the
machine speed factor (a slow machine under-measures rates just as it
over-measures times) and the check fails when the normalized rate
*dropped* more than the threshold.  Sections that record a
machine-independent ``best_ratio`` (interleaved A/B pairs) need no
normalization and are gated on the ratio directly; when such a section
also records a ``ratio_floor``, the *current* ratio must additionally
clear that absolute floor — a hard acceptance bar (e.g. frame
execution must stay >= 3x the scalar chain) that no amount of
baseline drift can relax.

Sections present on only one side are skipped with a note — a freshly
added benchmark has no baseline to regress against.
"""

import argparse
import json
import sys


def _normalized_seconds(section):
    measured = section.get("measured_seconds")
    factor = section.get("machine_speed_factor")
    if measured is None or not factor:
        return None
    return measured / factor


def _normalized_rate(section):
    """Machine-normalized throughput of a rate section, or None.

    Rates scale *down* on slow machines, so they multiply by the speed
    factor where times divide by it.  ``best_ratio`` sections (A/B
    rate ratios from interleaved pairs) are machine-independent and
    pass through unscaled.
    """
    ratio = section.get("best_ratio")
    if ratio is not None:
        return float(ratio)
    rate = section.get("events_per_second")
    factor = section.get("machine_speed_factor")
    if rate is None or not factor:
        return None
    return rate * factor


def compare(baseline, current, threshold):
    """Return a list of (section, base_norm, cur_norm, ratio) failures.

    *ratio* is always oriented so that > 1 means "got worse": elapsed
    current/baseline for timed sections, baseline/current for rates.
    """
    failures = []
    for name, base_section in baseline.items():
        cur_section = current.get(name)
        base_norm = _normalized_seconds(base_section)
        if base_norm is not None:
            if cur_section is None:
                print("note: section %r missing from current results" % name)
                continue
            cur_norm = _normalized_seconds(cur_section)
            if cur_norm is None:
                print("note: section %r has no timing in current results"
                      % name)
                continue
            ratio = cur_norm / base_norm
            status = "FAIL" if ratio > 1.0 + threshold else "ok"
            print("%-32s baseline %8.3fs  current %8.3fs  ratio %.3f  %s"
                  % (name, base_norm, cur_norm, ratio, status))
            if ratio > 1.0 + threshold:
                failures.append((name, base_norm, cur_norm, ratio))
            continue
        base_rate = _normalized_rate(base_section)
        if base_rate is None:
            continue  # neither timed nor rate-based: nothing to gate
        if cur_section is None:
            print("note: section %r missing from current results" % name)
            continue
        cur_rate = _normalized_rate(cur_section)
        if cur_rate is None:
            print("note: section %r has no rate in current results" % name)
            continue
        ratio = base_rate / cur_rate
        status = "FAIL" if ratio > 1.0 + threshold else "ok"
        if "best_ratio" in base_section:
            print("%-32s baseline %9.2fx   current %9.2fx   drop %.3f  %s"
                  % (name, base_rate, cur_rate, ratio, status))
        else:
            print("%-32s baseline %8.0f/s  current %8.0f/s  drop %.3f  %s"
                  % (name, base_rate, cur_rate, ratio, status))
        if ratio > 1.0 + threshold:
            failures.append((name, base_rate, cur_rate, ratio))
        floor = cur_section.get("ratio_floor", base_section.get("ratio_floor"))
        if "best_ratio" in base_section and floor is not None:
            floor = float(floor)
            if cur_rate < floor:
                print("%-32s below absolute floor: %9.2fx < %9.2fx  FAIL"
                      % (name, cur_rate, floor))
                failures.append((name, floor, cur_rate, floor / cur_rate))
            else:
                print("%-32s absolute floor %9.2fx: current %9.2fx  ok"
                      % (name, floor, cur_rate))
    return failures


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="committed benchmark results json")
    parser.add_argument("current", help="freshly measured results json")
    parser.add_argument("--pair", nargs=2, action="append", default=[],
                        metavar=("BASELINE", "CURRENT"),
                        help="additional baseline/current file pair "
                             "(repeatable)")
    parser.add_argument("--threshold", type=float, default=0.15,
                        help="allowed fractional slowdown (default 0.15)")
    args = parser.parse_args(argv)

    failures = []
    for base_path, cur_path in [(args.baseline, args.current)] + args.pair:
        with open(base_path) as fh:
            baseline = json.load(fh)
        with open(cur_path) as fh:
            current = json.load(fh)
        print("-- %s vs %s" % (base_path, cur_path))
        failures.extend(compare(baseline, current, args.threshold))

    if failures:
        for name, base_norm, cur_norm, ratio in failures:
            print("regression: %s is %.1f%% worse than baseline "
                  "(%.3f -> %.3f, machine-normalized)"
                  % (name, (ratio - 1.0) * 100.0, base_norm, cur_norm),
                  file=sys.stderr)
        return 1
    print("no benchmark regressions beyond %.0f%%" % (args.threshold * 100.0))
    return 0


if __name__ == "__main__":
    sys.exit(main())
