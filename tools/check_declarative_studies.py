#!/usr/bin/env python
"""Fail if new study modules hand-roll result loops instead of campaigns.

DESIGN.md §4.12 moved the ablation studies onto the declarative
campaign engine (``repro/experiments/campaign.py``): components declare
knobs, the engine generates the grid, derives the seeds, fans out, and
computes importance scores.  Before that, every new study copied ~60
lines of ``ExperimentResult`` + ``run_points`` boilerplate — and the
copies drifted (dropped ``jobs`` forwarding, stale docstrings, ad-hoc
seeding).  This lint keeps the boilerplate from creeping back: *new*
modules under ``repro/experiments/`` must not call
``ExperimentResult(...)`` or ``run_points(...)`` directly — declare a
:class:`Campaign` instead.

The numbered paper experiments (``e01``–``e16``) and the harness
plumbing predate the engine and are grandfathered; migrating them is
ROADMAP work, not a lint failure.  A deliberate hand-written study can
be marked with ``# lint: allow-handwritten-study`` on the offending
line.

Usage::

    python tools/check_declarative_studies.py [EXPERIMENTS_DIR]
"""

import argparse
import ast
import os
import re
import sys

ALLOW_MARKER = "lint: allow-handwritten-study"

#: constructing results or fanning out points by hand is the campaign
#: engine's job
_HANDROLLED_CALLS = {"ExperimentResult", "run_points"}

#: modules that predate the campaign engine (the numbered paper
#: experiments are ROADMAP migration work) or *are* the harness
_GRANDFATHERED = re.compile(
    r"^(e\d{2}_.*|__init__|__main__|base|breakdown|campaign|common|sweep|"
    r"testbed)$")


def _call_name(node):
    """Dotted-or-bare name of a Call's callee, or None."""
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def check_module(path):
    """Return [(lineno, message)] findings for one source file."""
    with open(path) as fh:
        source = fh.read()
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:  # pragma: no cover - repo must parse
        return [(exc.lineno or 0, "syntax error: %s" % exc)]
    lines = source.splitlines()

    def allowed(lineno):
        return 0 < lineno <= len(lines) and ALLOW_MARKER in lines[lineno - 1]

    findings = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        callee = _call_name(node)
        if callee in _HANDROLLED_CALLS and not allowed(node.lineno):
            findings.append(
                (node.lineno,
                 "hand-rolled %s(...) — declare a Campaign instead "
                 "(repro/experiments/campaign.py)" % callee))
    return findings


def iter_sources(experiments_dir):
    for filename in sorted(os.listdir(experiments_dir)):
        if not filename.endswith(".py"):
            continue
        if _GRANDFATHERED.match(filename[:-3]):
            continue
        yield os.path.join(experiments_dir, filename)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("experiments_dir", nargs="?",
                        default=os.path.join("src", "repro", "experiments"))
    args = parser.parse_args(argv)
    if not os.path.isdir(args.experiments_dir):
        print("no experiments directory at %r" % args.experiments_dir,
              file=sys.stderr)
        return 2
    failures = 0
    for path in iter_sources(args.experiments_dir):
        for lineno, message in check_module(path):
            print("%s:%d: %s" % (path, lineno, message))
            failures += 1
    if failures:
        print("\n%d hand-rolled study construct(s) found — new studies go "
              "through the campaign registry (see DESIGN.md §4.12)"
              % failures, file=sys.stderr)
        return 1
    print("all non-grandfathered study modules are declarative")
    return 0


if __name__ == "__main__":
    sys.exit(main())
