#!/usr/bin/env python
"""Fail if new module-global mutable counters appear outside telemetry.

DESIGN.md §4.9 moved every measurement path onto the instrument
registry in ``repro/telemetry/``; module-global counters are how
process-wide state used to leak across sweep points and fork workers
(they survive into forked children and break serial-vs-parallel
bit-identity).  This lint keeps them from creeping back in.

Usage::

    python tools/check_no_global_counters.py [SRC_DIR]

Flags, per module under ``SRC_DIR`` (default ``src/repro``, with
``repro/telemetry/`` itself exempt — it is the one place allowed to own
mutable metric state):

* a module-level name bound to a numeric literal and reassigned through
  a ``global`` statement inside a function (the classic counter);
* a module-level binding of ``itertools.count(...)``, a
  ``collections.Counter(...)``, or ``defaultdict(int/float)`` — shared
  sequence/counter state in disguise;
* a module-level dict literal whose values are all numeric literals and
  whose name smells like an accumulator (``*_totals``, ``*_counters``,
  ``*_stats``).

A deliberate exception can be marked with ``# lint: allow-global-counter``
on the offending line.
"""

import argparse
import ast
import os
import sys

ALLOW_MARKER = "lint: allow-global-counter"

#: constructor calls that amount to module-global counter state
_COUNTER_CALLS = {"count", "Counter"}
_ACCUMULATOR_NAMES = ("_totals", "_counters", "_stats")


def _is_numeric_literal(node):
    return (isinstance(node, ast.Constant)
            and type(node.value) in (int, float))


def _call_name(node):
    """Dotted-or-bare name of a Call's callee, or None."""
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _assigned_names(node):
    targets = node.targets if isinstance(node, ast.Assign) else [node.target]
    for target in targets:
        if isinstance(target, ast.Name):
            yield target.id


def _globals_reassigned(tree):
    """Names declared ``global`` and assigned inside any function."""
    reassigned = set()
    for func in ast.walk(tree):
        if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        declared = set()
        for node in ast.walk(func):
            if isinstance(node, ast.Global):
                declared.update(node.names)
        if not declared:
            continue
        for node in ast.walk(func):
            if isinstance(node, (ast.Assign, ast.AnnAssign)):
                reassigned.update(set(_assigned_names(node)) & declared)
            elif isinstance(node, ast.AugAssign):
                if isinstance(node.target, ast.Name):
                    if node.target.id in declared:
                        reassigned.add(node.target.id)
    return reassigned


def _flag_value(name, value):
    """Why this module-level binding looks like counter state, or None."""
    if isinstance(value, ast.Call):
        callee = _call_name(value)
        if callee in _COUNTER_CALLS:
            return "module-global %s(...) sequence/counter state" % callee
        if callee == "defaultdict" and value.args \
                and isinstance(value.args[0], ast.Name) \
                and value.args[0].id in ("int", "float"):
            return "module-global defaultdict(%s) counter map" \
                % value.args[0].id
    if isinstance(value, ast.Dict) and value.values \
            and all(_is_numeric_literal(v) for v in value.values) \
            and name.lower().endswith(_ACCUMULATOR_NAMES):
        return "module-global accumulator dict"
    return None


def check_module(path):
    """Return [(lineno, message)] findings for one source file."""
    with open(path) as fh:
        source = fh.read()
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:  # pragma: no cover - repo must parse
        return [(exc.lineno or 0, "syntax error: %s" % exc)]
    lines = source.splitlines()

    def allowed(lineno):
        return 0 < lineno <= len(lines) and ALLOW_MARKER in lines[lineno - 1]

    findings = []
    reassigned = _globals_reassigned(tree)
    for node in tree.body:
        if not isinstance(node, (ast.Assign, ast.AnnAssign)):
            continue
        value = node.value
        if value is None or allowed(node.lineno):
            continue
        for name in _assigned_names(node):
            reason = _flag_value(name, value)
            if reason is None and _is_numeric_literal(value) \
                    and name in reassigned:
                reason = ("module-global numeric %r reassigned via "
                          "'global'" % name)
            if reason:
                findings.append((node.lineno, "%s: %s" % (name, reason)))
    return findings


def iter_sources(src_dir):
    for dirpath, dirnames, filenames in os.walk(src_dir):
        dirnames[:] = [d for d in dirnames if d != "__pycache__"]
        if os.path.basename(dirpath) == "telemetry":
            dirnames[:] = []
            continue
        for filename in sorted(filenames):
            if filename.endswith(".py"):
                yield os.path.join(dirpath, filename)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("src_dir", nargs="?",
                        default=os.path.join("src", "repro"))
    args = parser.parse_args(argv)
    if not os.path.isdir(args.src_dir):
        print("no source directory at %r" % args.src_dir, file=sys.stderr)
        return 2
    failures = 0
    for path in iter_sources(args.src_dir):
        for lineno, message in check_module(path):
            print("%s:%d: %s" % (path, lineno, message))
            failures += 1
    if failures:
        print("\n%d module-global counter(s) found — route metric state "
              "through repro.telemetry instead (see DESIGN.md §4.9)"
              % failures, file=sys.stderr)
        return 1
    print("no module-global counters outside repro/telemetry")
    return 0


if __name__ == "__main__":
    sys.exit(main())
